"""Unit tests for the AddressSpace frame table and load/store."""

import pytest

from repro.errors import InvalidAddress, OutOfMemory
from repro.heap.frame import BOOT_ORDER, UNASSIGNED_ORDER, Frame
from repro.heap.space import AddressSpace


@pytest.fixture
def space():
    return AddressSpace(heap_frames=4, frame_shift=8)  # 256-byte frames


def test_frame_geometry(space):
    assert space.frame_bytes == 256
    assert space.frame_words == 64


def test_acquire_and_budget(space):
    frames = [space.acquire_frame("test") for _ in range(4)]
    assert space.heap_frames_in_use == 4
    assert space.heap_frames_free() == 0
    with pytest.raises(OutOfMemory):
        space.acquire_frame("test")
    space.release_frame(frames[0])
    assert space.heap_frames_free() == 1
    again = space.acquire_frame("test")
    assert again.index == frames[0].index  # recycled through the pool


def test_boot_frames_outside_budget(space):
    for _ in range(3):
        space.acquire_frame("boot", boot=True)
    assert space.heap_frames_in_use == 0
    assert space.boot_frames_in_use == 3
    # Boot frames are immortal.
    boot = next(iter(space.iter_frames()))
    assert boot.collect_order == BOOT_ORDER
    with pytest.raises(InvalidAddress):
        space.release_frame(boot)


def test_frame_zero_is_never_mapped(space):
    assert not space.is_mapped(0)
    with pytest.raises(InvalidAddress):
        space.load(0)
    first = space.acquire_frame("test")
    assert first.index >= 1


def test_load_store_roundtrip(space):
    frame = space.acquire_frame("test")
    base = space.frame_base(frame)
    space.store(base, 42)
    space.store(base + 4, -7)
    assert space.load(base) == 42
    assert space.load(base + 4) == -7


def test_store_misaligned_raises(space):
    frame = space.acquire_frame("test")
    base = space.frame_base(frame)
    with pytest.raises(InvalidAddress):
        space.store(base + 2, 1)


def test_load_misaligned_raises(space):
    # Loads enforce alignment exactly like stores (the seed let them slip
    # through to a wrong word).
    frame = space.acquire_frame("test")
    base = space.frame_base(frame)
    space.store(base, 42)
    for offset in (1, 2, 3):
        with pytest.raises(InvalidAddress):
            space.load(base + offset)


def test_unmapped_access_raises(space):
    frame = space.acquire_frame("test")
    beyond = space.frame_base(frame) + space.frame_bytes * 10
    with pytest.raises(InvalidAddress):
        space.load(beyond)
    with pytest.raises(InvalidAddress):
        space.store(beyond, 0)


def test_release_zeroes_storage(space):
    frame = space.acquire_frame("test")
    base = space.frame_base(frame)
    frame.used_words = 3
    space.store(base, 99)
    space.release_frame(frame)
    fresh = space.acquire_frame("test")
    assert fresh is frame
    assert space.load(space.frame_base(fresh)) == 0


def test_reset_zeroes_entire_used_prefix(space):
    # Frame.reset zeroes with one slice assignment; a recycled frame must
    # read back all-zero across the whole previously-used prefix.
    frame = space.acquire_frame("test")
    base = space.frame_base(frame)
    for i in range(space.frame_words):
        space.store(base + i * 4, i + 1)
    frame.used_words = space.frame_words  # full frame
    space.release_frame(frame)
    fresh = space.acquire_frame("test")
    assert fresh is frame
    assert all(
        space.load(base + i * 4) == 0 for i in range(space.frame_words)
    )
    assert fresh.used_words == 0


@pytest.mark.parametrize("used", [0, 64])  # zero-length and full frames
def test_frame_reset_edge_cases(used):
    frame = Frame(index=1, size_words=64)
    frame.allocated = True
    for i in range(64):
        frame.words[i] = i + 1
    frame.used_words = used
    frame.reset()
    # The used prefix must be zeroed; beyond it the (never bump-allocated)
    # residue is allowed to persist — release always runs at the high-water
    # mark, so nothing observes it.
    assert list(frame.words[:used]) == [0] * used
    assert frame.used_words == 0 and not frame.allocated


def test_release_unallocated_raises(space):
    frame = space.acquire_frame("test")
    space.release_frame(frame)
    with pytest.raises(InvalidAddress):
        space.release_frame(frame)


def test_set_order_updates_flat_table(space):
    frame = space.acquire_frame("test")
    assert space.orders[frame.index] == UNASSIGNED_ORDER
    space.set_order(frame, 17)
    assert space.orders[frame.index] == 17
    assert frame.collect_order == 17


def test_access_counters(space):
    frame = space.acquire_frame("test")
    base = space.frame_base(frame)
    before_loads, before_stores = space.load_count, space.store_count
    space.store(base, 1)
    space.load(base)
    space.load(base)
    assert space.store_count - before_stores == 1
    assert space.load_count - before_loads == 2


def test_minimum_heap_two_frames():
    with pytest.raises(OutOfMemory):
        AddressSpace(heap_frames=1)


def test_iter_frames_skips_released(space):
    a = space.acquire_frame("a")
    b = space.acquire_frame("b")
    space.release_frame(a)
    live = list(space.iter_frames())
    assert b in live and a not in live
