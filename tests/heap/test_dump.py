"""Tests for heap inspection tools (census, occupancy map, DOT export)."""

import pytest

from repro.heap.dump import census, occupancy_map, to_dot
from repro.runtime import VM, MutatorContext


@pytest.fixture
def env():
    vm = VM(heap_bytes=16 * 1024, collector="25.25.100", boot_ballast_slots=0)
    vm.define_type("node", nrefs=2, nscalars=1)
    vm.define_ref_array("arr")
    return vm, MutatorContext(vm)


def build_graph(vm, mu):
    node = vm.types.by_name("node")
    arr = vm.types.by_name("arr")
    table = mu.alloc(arr, length=4)
    for i in range(4):
        n = mu.alloc(node)
        mu.write(table, i, n)
        n.drop()
    return table


def test_census_counts(env):
    vm, mu = env
    table = build_graph(vm, mu)
    out = census(vm.model, [table.addr])
    # 1 array + 4 nodes + type objects (arr, node, metatype)
    assert out.by_type["arr"] == 1
    assert out.by_type["node"] == 4
    assert out.objects >= 8
    assert out.words > 0
    assert out.edges >= 8  # 4 array slots + type slots
    assert out.null_slots >= 8  # each node has 2 empty ref fields
    assert out.max_depth >= 2


def test_census_top_types(env):
    vm, mu = env
    table = build_graph(vm, mu)
    out = census(vm.model, [table.addr])
    names = [name for name, _ in out.top_types(2)]
    assert "node" in names
    assert "node" in out.summary()


def test_census_empty_roots(env):
    vm, mu = env
    out = census(vm.model, [])
    assert out.objects == 0


def test_occupancy_map_lists_frames(env):
    vm, mu = env
    build_graph(vm, mu)
    text = occupancy_map(vm.space)
    assert "frame" in text.splitlines()[0]
    assert "boot" in text
    assert "belt0" in text
    assert "[#" in text or "[" in text


def test_to_dot_structure(env):
    vm, mu = env
    table = build_graph(vm, mu)
    dot = to_dot(vm.model, [table.addr])
    assert dot.startswith("digraph heap {")
    assert dot.rstrip().endswith("}")
    assert dot.count("->") >= 4
    assert "arr@" in dot and "node@" in dot


def test_to_dot_truncates(env):
    vm, mu = env
    node = vm.types.by_name("node")
    head = mu.handle()
    for _ in range(50):
        n = mu.alloc(node)
        mu.write(n, 0, head)
        head.addr = n.addr
        n.drop()
    dot = to_dot(vm.model, [head.addr], max_objects=10)
    assert dot.count("label=") <= 10
