"""Tests for the heap verifier — including the error paths that catch
collector bugs (the verifier must *fail*, loudly, on each corruption)."""

import pytest

from repro.errors import HeapCorruption
from repro.heap import (
    AddressSpace,
    BootImage,
    HeapVerifier,
    ObjectModel,
    TypeRegistry,
    WORD_BYTES,
)


@pytest.fixture
def env():
    space = AddressSpace(heap_frames=8, frame_shift=10)
    types = TypeRegistry()
    model = ObjectModel(space, types)
    boot = BootImage(space, types, model)
    node = boot.define_type("node", nrefs=2, nscalars=1)
    verifier = HeapVerifier(space, model)
    return space, model, boot, node, verifier


def _alloc(space, model, desc, order=1):
    frame = space.acquire_frame("test")
    space.set_order(frame, order)
    addr = space.frame_base(frame)
    frame.used_words = desc.size_words()
    model.init_header(addr, desc)
    space.store(addr + WORD_BYTES, desc.addr)
    return addr


def test_verify_empty_roots(env):
    space, model, boot, node, verifier = env
    report = verifier.verify([])
    assert report.objects == 0 and report.words == 0


def test_verify_counts_reachable(env):
    space, model, boot, node, verifier = env
    a = _alloc(space, model, node)
    b = _alloc(space, model, node)
    model.set_ref_raw(a, 0, b)
    report = verifier.verify([a])
    # 2 heap nodes + their boot type object + the metatype (type slots
    # are traversed like any other reference)
    assert report.objects == 4
    meta_words = 4  # metatype instances: header(3) + 1 scalar
    assert report.words == 2 * node.size_words() + 2 * meta_words
    assert report.ref_slots == 2 * 3 + 2 * 1
    assert report.live_bytes == report.words * WORD_BYTES


def test_verify_shared_counted_once(env):
    space, model, boot, node, verifier = env
    shared = _alloc(space, model, node)
    a = _alloc(space, model, node)
    b = _alloc(space, model, node)
    model.set_ref_raw(a, 0, shared)
    model.set_ref_raw(b, 0, shared)
    report = verifier.verify([a, b])
    assert report.objects == 3 + 2  # plus type object and metatype


def test_verify_cycles_terminate(env):
    space, model, boot, node, verifier = env
    a = _alloc(space, model, node)
    b = _alloc(space, model, node)
    model.set_ref_raw(a, 0, b)
    model.set_ref_raw(b, 0, a)
    assert verifier.verify([a]).objects == 2 + 2


def test_rejects_misaligned_root(env):
    space, model, boot, node, verifier = env
    a = _alloc(space, model, node)
    with pytest.raises(HeapCorruption):
        verifier.verify([a + 2])


def test_rejects_unmapped_root(env):
    space, model, boot, node, verifier = env
    with pytest.raises(HeapCorruption):
        verifier.verify([0x7FFF000])


def test_rejects_forwarded_object(env):
    space, model, boot, node, verifier = env
    a = _alloc(space, model, node)
    b = _alloc(space, model, node)
    model.set_forwarding(a, b)
    with pytest.raises(HeapCorruption):
        verifier.verify([a])


def test_rejects_unstamped_frame(env):
    space, model, boot, node, verifier = env
    a = _alloc(space, model, node)
    frame = space.frame_containing(a)
    from repro.heap.frame import UNASSIGNED_ORDER

    space.set_order(frame, UNASSIGNED_ORDER)
    with pytest.raises(HeapCorruption):
        verifier.verify([a])


def test_rejects_clobbered_type_slot(env):
    space, model, boot, node, verifier = env
    a = _alloc(space, model, node)
    space.store(a + WORD_BYTES, 12345 * 4)
    with pytest.raises(HeapCorruption):
        verifier.verify([a])


def test_rejects_object_overrunning_used_prefix(env):
    space, model, boot, node, verifier = env
    a = _alloc(space, model, node)
    space.frame_containing(a).used_words = 2  # shorter than the object
    with pytest.raises(HeapCorruption):
        verifier.verify([a])


def test_rejects_dangling_reference(env):
    space, model, boot, node, verifier = env
    a = _alloc(space, model, node)
    b = _alloc(space, model, node)
    model.set_ref_raw(a, 1, b)
    frame_b = space.frame_containing(b)
    space.release_frame(frame_b)  # b now dangles
    with pytest.raises(HeapCorruption):
        verifier.verify([a])
