"""Equivalence tests: bulk kernels vs the word-at-a-time reference path.

``load_slice``/``store_slice``/``copy_words`` must behave exactly like the
single-word loops they replace — same values, same ``load_count``/
``store_count`` accounting, same ``InvalidAddress`` errors at unmapped or
misaligned addresses — including runs that span a frame boundary.
"""

import pytest

from repro.errors import InvalidAddress
from repro.heap.address import WORD_BYTES
from repro.heap.space import AddressSpace


@pytest.fixture
def space():
    return AddressSpace(heap_frames=6, frame_shift=8)  # 64-word frames


def fill(space, base, nwords, stride=7):
    for i in range(nwords):
        space.store(base + i * WORD_BYTES, i * stride - 3)


def reference_load(space, addr, nwords):
    return [space.load(addr + i * WORD_BYTES) for i in range(nwords)]


# ----------------------------------------------------------------------
# load_slice
# ----------------------------------------------------------------------
def test_load_slice_matches_word_loads(space):
    frame = space.acquire_frame("a")
    base = space.frame_base(frame)
    fill(space, base, 64)
    before = space.load_count
    bulk = space.load_slice(base + 4, 32)
    assert space.load_count - before == 32
    assert bulk == reference_load(space, base + 4, 32)


def test_load_slice_spans_frame_boundary(space):
    a = space.acquire_frame("a")
    b = space.acquire_frame("b")
    assert b.index == a.index + 1  # contiguous by construction
    base = space.frame_base(a)
    fill(space, base, 128)
    start = base + 60 * WORD_BYTES  # last 4 words of a + first 8 of b
    assert space.load_slice(start, 12) == reference_load(space, start, 12)


def test_load_slice_zero_length_and_errors(space):
    frame = space.acquire_frame("a")
    base = space.frame_base(frame)
    before = space.load_count
    assert space.load_slice(base, 0) == []
    assert space.load_count == before
    with pytest.raises(InvalidAddress):
        space.load_slice(base + 2, 4)  # misaligned
    with pytest.raises(InvalidAddress):
        space.load_slice(base, -1)
    with pytest.raises(InvalidAddress):
        space.load_slice(base + 60 * WORD_BYTES, 8)  # runs off the mapping
    with pytest.raises(InvalidAddress):
        space.load_slice(space.frame_bytes * 40, 1)  # wholly unmapped


# ----------------------------------------------------------------------
# store_slice
# ----------------------------------------------------------------------
def test_store_slice_matches_word_stores(space):
    frame = space.acquire_frame("a")
    base = space.frame_base(frame)
    values = [i * 11 - 5 for i in range(40)]
    before = space.store_count
    space.store_slice(base + 8, values)
    assert space.store_count - before == 40
    assert reference_load(space, base + 8, 40) == values


def test_store_slice_spans_frame_boundary(space):
    a = space.acquire_frame("a")
    space.acquire_frame("b")
    base = space.frame_base(a)
    start = base + 62 * WORD_BYTES
    values = [9, -8, 7, -6, 5]
    space.store_slice(start, values)
    assert reference_load(space, start, 5) == values


def test_store_slice_zero_length_and_errors(space):
    frame = space.acquire_frame("a")
    base = space.frame_base(frame)
    before = space.store_count
    space.store_slice(base, [])
    assert space.store_count == before
    with pytest.raises(InvalidAddress):
        space.store_slice(base + 2, [1])  # misaligned
    with pytest.raises(InvalidAddress):
        space.store_slice(base + 62 * WORD_BYTES, [1, 2, 3])  # runs off
    # The failed spanning store must not have touched the mapped prefix.
    assert reference_load(space, base + 62 * WORD_BYTES, 2) == [0, 0]


# ----------------------------------------------------------------------
# copy_words
# ----------------------------------------------------------------------
def reference_copy(space, src, dst, nwords):
    for i in range(nwords):
        space.store(dst + i * WORD_BYTES, space.load(src + i * WORD_BYTES))


def test_copy_words_matches_reference(space):
    a = space.acquire_frame("a")
    b = space.acquire_frame("b")
    c = space.acquire_frame("c")
    base = space.frame_base(a)
    fill(space, base, 64)
    loads, stores = space.load_count, space.store_count
    space.copy_words(base + 4, space.frame_base(b) + 8, 20)
    assert space.load_count - loads == 20
    assert space.store_count - stores == 20
    reference_copy(space, base + 4, space.frame_base(c) + 8, 20)
    assert reference_load(space, space.frame_base(b) + 8, 20) == reference_load(
        space, space.frame_base(c) + 8, 20
    )


def test_copy_words_spans_frame_boundaries(space):
    a = space.acquire_frame("a")
    b = space.acquire_frame("b")
    c = space.acquire_frame("c")
    d = space.acquire_frame("d")
    assert [b.index - a.index, d.index - c.index] == [1, 1]
    src = space.frame_base(a) + 58 * WORD_BYTES  # spans a→b
    dst = space.frame_base(c) + 61 * WORD_BYTES  # spans c→d, different phase
    fill(space, space.frame_base(a), 128)
    space.copy_words(src, dst, 10)
    assert reference_load(space, dst, 10) == reference_load(space, src, 10)


def test_copy_words_zero_length_and_errors(space):
    frame = space.acquire_frame("a")
    base = space.frame_base(frame)
    loads, stores = space.load_count, space.store_count
    space.copy_words(base, base + 8, 0)
    assert (space.load_count, space.store_count) == (loads, stores)
    with pytest.raises(InvalidAddress):
        space.copy_words(base + 2, base + 8, 2)  # misaligned src
    with pytest.raises(InvalidAddress):
        space.copy_words(base, base + 2, 2)  # misaligned dst
    with pytest.raises(InvalidAddress):
        space.copy_words(base, base, -4)
    with pytest.raises(InvalidAddress):
        space.copy_words(base + 60 * WORD_BYTES, base, 8)  # src runs off
    with pytest.raises(InvalidAddress):
        space.copy_words(base, base + 60 * WORD_BYTES, 8)  # dst runs off


# ----------------------------------------------------------------------
# frame cache coherence
# ----------------------------------------------------------------------
def test_released_frame_is_not_served_from_cache(space):
    frame = space.acquire_frame("a")
    base = space.frame_base(frame)
    space.store(base, 123)
    assert space.load(base) == 123  # frame is now the cached entry
    space.release_frame(frame)
    with pytest.raises(InvalidAddress):
        space.load(base)
    with pytest.raises(InvalidAddress):
        space.store(base, 1)
