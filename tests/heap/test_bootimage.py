"""Unit tests for the boot image and the metatype bootstrap."""

import pytest

from repro.heap import AddressSpace, BOOT_ORDER, BootImage, ObjectModel, TypeRegistry
from repro.heap.bootimage import METATYPE_NAME


@pytest.fixture
def env():
    space = AddressSpace(heap_frames=4, frame_shift=10)
    types = TypeRegistry()
    model = ObjectModel(space, types)
    boot = BootImage(space, types, model)
    return space, types, model, boot


def test_metatype_points_at_itself(env):
    space, types, model, boot = env
    meta = types.by_name(METATYPE_NAME)
    assert meta.addr != 0
    assert model.type_of(meta.addr) is meta


def test_type_objects_are_boot_resident(env):
    space, types, model, boot = env
    node = boot.define_type("node", nrefs=1)
    frame = space.frame_containing(node.addr)
    assert frame.collect_order == BOOT_ORDER
    assert space.heap_frames_in_use == 0


def test_type_object_records_type_id(env):
    space, types, model, boot = env
    node = boot.define_type("node")
    assert model.get_scalar(node.addr, 0) == node.type_id
    assert model.type_of(node.addr).name == METATYPE_NAME


def test_define_array_types(env):
    _, types, model, boot = env
    arr = boot.define_ref_array("arr")
    buf = boot.define_scalar_array("buf")
    assert types.by_addr(arr.addr) is arr
    assert types.by_addr(buf.addr) is buf


def test_global_table(env):
    space, types, model, boot = env
    table = boot.alloc_global_table(16)
    assert model.length_of(table) == 16
    assert model.type_of(table).name == "<globals>"
    assert space.frame_containing(table).collect_order == BOOT_ORDER
    # A second table reuses the <globals> type.
    table2 = boot.alloc_global_table(4)
    assert model.type_of(table2).name == "<globals>"


def test_boot_image_grows_across_frames(env):
    space, _, model, boot = env
    before = boot.size_frames
    for i in range(200):
        boot.define_type(f"t{i}", nrefs=0, nscalars=2)
    assert boot.size_frames > before


def test_iter_objects_walks_every_type_object(env):
    _, types, model, boot = env
    boot.define_type("a")
    boot.define_type("b", nrefs=3)
    addrs = list(boot.iter_objects())
    for desc in types:
        assert desc.addr in addrs
