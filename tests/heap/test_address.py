"""Unit tests for address arithmetic."""

import pytest

from repro.errors import InvalidAddress
from repro.heap.address import (
    DEFAULT_FRAME_SHIFT,
    NULL,
    WORD_BYTES,
    bytes_to_words,
    check_word_aligned,
    frame_base,
    frame_of,
    frame_offset_words,
    is_word_aligned,
    words_to_bytes,
)


def test_word_size_is_four_bytes():
    assert WORD_BYTES == 4


def test_null_is_zero():
    assert NULL == 0


def test_words_to_bytes_roundtrip():
    for words in (0, 1, 2, 7, 1024):
        assert bytes_to_words(words_to_bytes(words)) == words


def test_bytes_to_words_rounds_up():
    assert bytes_to_words(1) == 1
    assert bytes_to_words(4) == 1
    assert bytes_to_words(5) == 2
    assert bytes_to_words(0) == 0


def test_is_word_aligned():
    assert is_word_aligned(0)
    assert is_word_aligned(8)
    assert not is_word_aligned(2)
    assert not is_word_aligned(7)


def test_frame_of_matches_shift():
    shift = DEFAULT_FRAME_SHIFT
    assert frame_of(0, shift) == 0
    assert frame_of((1 << shift) - 1, shift) == 0
    assert frame_of(1 << shift, shift) == 1
    assert frame_of(5 << shift, shift) == 5


def test_frame_base_inverts_frame_of():
    shift = 10
    for index in (1, 2, 77):
        assert frame_of(frame_base(index, shift), shift) == index


def test_frame_offset_words():
    shift = 12
    base = frame_base(3, shift)
    assert frame_offset_words(base, shift) == 0
    assert frame_offset_words(base + 4, shift) == 1
    assert frame_offset_words(base + 40, shift) == 10


def test_check_word_aligned_raises():
    assert check_word_aligned(16) == 16
    with pytest.raises(InvalidAddress):
        check_word_aligned(17)


def test_intra_frame_pointers_share_frame_index():
    """The shift-and-compare of paper Fig. 4: same frame => same index."""
    shift = 12
    a = frame_base(9, shift) + 64
    b = frame_base(9, shift) + 1000
    c = frame_base(10, shift)
    assert frame_of(a, shift) == frame_of(b, shift)
    assert frame_of(a, shift) != frame_of(c, shift)
