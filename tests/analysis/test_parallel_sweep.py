"""The process-parallel sweep must be bit-identical to the serial loop.

Every grid cell re-derives its entire world from (benchmark, collector,
heap_bytes, scale, seed), so fanning the grid out over worker processes
must change nothing but wall-clock.  ``RunStats`` is a plain dataclass;
``==`` compares every field, including the pause records.
"""

import pytest

from repro.analysis.sweep import heap_multipliers, sweep, sweep_grid

#: Small but non-trivial grid: provokes several nursery collections per
#: run while keeping the whole test under a few seconds.
BENCHMARK = "jess"
COLLECTOR = "25.25.100"
MIN_HEAP = 24 * 1024
SCALE = 0.2
SEED = 13


@pytest.fixture(scope="module")
def serial():
    return sweep(
        BENCHMARK,
        COLLECTOR,
        MIN_HEAP,
        heap_multipliers(3),
        scale=SCALE,
        seed=SEED,
        parallel=False,
    )


def test_parallel_sweep_matches_serial(serial):
    parallel = sweep(
        BENCHMARK,
        COLLECTOR,
        MIN_HEAP,
        heap_multipliers(3),
        scale=SCALE,
        seed=SEED,
        parallel=True,
        max_workers=2,
    )
    assert parallel.runs == serial.runs
    assert parallel.heap_sizes == serial.heap_sizes


def test_sweep_grid_matches_serial_sweep(serial):
    grid = sweep_grid(
        [BENCHMARK],
        [COLLECTOR],
        {BENCHMARK: MIN_HEAP},
        heap_multipliers(3),
        scale=SCALE,
        seed=SEED,
        parallel=True,
        max_workers=2,
    )
    assert set(grid) == {(BENCHMARK, COLLECTOR)}
    assert grid[(BENCHMARK, COLLECTOR)].runs == serial.runs


def test_serial_run_many_preserves_input_order():
    from repro.harness.runner import run_many

    jobs = [
        (BENCHMARK, COLLECTOR, MIN_HEAP * m, SCALE, SEED) for m in (2, 1)
    ]
    stats = run_many(jobs, parallel=False)
    assert [s.heap_bytes for s in stats] == [MIN_HEAP * 2, MIN_HEAP]
