"""Unit + property tests for the MMU computation (Fig. 11 machinery)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.mmu import (
    default_windows,
    max_pause,
    mmu,
    mmu_curve,
    overall_utilisation,
)


def test_no_pauses_full_utilisation():
    assert mmu([], 1000.0, 100.0) == 1.0
    assert overall_utilisation([], 1000.0) == 1.0


def test_single_pause_blocks_small_windows():
    pauses = [(400.0, 500.0)]
    # any window of exactly the pause length inside it has zero utilisation
    assert mmu(pauses, 1000.0, 100.0) == pytest.approx(0.0)
    assert mmu(pauses, 1000.0, 50.0) == pytest.approx(0.0)
    # a 200-cycle window can be at worst half paused
    assert mmu(pauses, 1000.0, 200.0) == pytest.approx(0.5)


def test_x_intercept_is_max_pause():
    """The MMU curve is zero up to the maximum pause (Fig. 11 x-intercept)."""
    pauses = [(100.0, 150.0), (300.0, 420.0)]
    assert max_pause(pauses) == 120.0
    assert mmu(pauses, 1000.0, 120.0) == pytest.approx(0.0)
    assert mmu(pauses, 1000.0, 121.0) > 0.0


def test_asymptote_is_overall_throughput():
    pauses = [(100.0, 200.0), (500.0, 600.0)]
    total = 1000.0
    assert mmu(pauses, total, total) == pytest.approx(
        overall_utilisation(pauses, total)
    )
    assert overall_utilisation(pauses, total) == pytest.approx(0.8)


def test_clustered_pauses_hurt_mmu():
    """Clustering matters: same total pause time, worse MMU when adjacent
    (the phenomenon MMU was designed to expose, §4.3)."""
    spread = [(100.0, 150.0), (800.0, 850.0)]
    clustered = [(100.0, 150.0), (160.0, 210.0)]
    window = 300.0
    assert mmu(clustered, 1000.0, window) < mmu(spread, 1000.0, window)


def test_curve_monotone_and_bounded():
    pauses = [(50.0, 80.0), (200.0, 260.0), (270.0, 300.0)]
    curve = mmu_curve(pauses, 1000.0, [10, 50, 100, 200, 400, 1000])
    values = [m for _, m in curve]
    assert all(0.0 <= v <= 1.0 for v in values)
    assert values == sorted(values)  # monotonically non-decreasing


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=900),
            st.floats(min_value=1, max_value=80),
        ),
        max_size=12,
    ),
    st.floats(min_value=1, max_value=1000),
)
def test_mmu_bounds_property(raw, window):
    # build sorted, disjoint pauses
    pauses = []
    cursor = 0.0
    for start, duration in sorted(raw):
        begin = max(start, cursor)
        end = begin + duration
        if end > 2000.0:
            break
        pauses.append((begin, end))
        cursor = end + 1.0
    total = 2500.0
    value = mmu(pauses, total, window)
    assert 0.0 <= value <= 1.0
    # never better than the overall utilisation
    assert value <= overall_utilisation(pauses, total) + 1e-9


def test_default_windows_log_spaced():
    windows = default_windows(1e6, points=10)
    assert len(windows) == 10
    assert windows[0] < windows[-1] <= 1e6
    ratios = [b / a for a, b in zip(windows, windows[1:])]
    assert max(ratios) / min(ratios) == pytest.approx(1.0, rel=1e-6)


def test_window_longer_than_run_clamped():
    pauses = [(10.0, 20.0)]
    assert mmu(pauses, 100.0, 500.0) == pytest.approx(0.9)
