"""Unit tests for heap sweeps and console table rendering."""

import pytest

from repro.analysis.sweep import FRAME_BYTES, heap_multipliers, sweep
from repro.analysis.tables import format_bytes, render_mmu, render_series, render_table


def test_heap_multipliers_grid():
    grid = heap_multipliers(points=33)
    assert len(grid) == 33
    assert grid[0] == pytest.approx(1.0)
    assert grid[-1] == pytest.approx(3.0)
    ratios = [b / a for a, b in zip(grid, grid[1:])]
    assert max(ratios) / min(ratios) == pytest.approx(1.0, rel=1e-9)


def test_heap_multipliers_rejects_tiny():
    with pytest.raises(ValueError):
        heap_multipliers(points=1)


def test_sweep_runs_and_aligns():
    result = sweep("jess", "25.25.100", 16 * 1024, [1.0, 2.0], scale=0.2)
    assert len(result.runs) == 2
    assert result.heap_sizes[0] % FRAME_BYTES == 0
    series = result.total_time_series()
    assert len(series) == 2
    assert all(v is None or v > 0 for v in series)


def test_sweep_failure_becomes_gap():
    result = sweep("jess", "gctk:Fixed.50", 2 * 1024, [1.0], scale=0.2)
    assert result.total_time_series() == [None]


def test_render_table_alignment():
    text = render_table(["a", "bbb"], [["1", "2"], ["333", "4"]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bbb" in lines[1]
    assert len(lines) == 5


def test_render_series_gaps():
    text = render_series([1.0, 2.0], {"x": [1.5, None]}, "fig")
    assert "--" in text
    assert "1.500" in text
    assert "2.00x" in text


def test_render_mmu():
    curves = {"a": [(10.0, 0.1), (100.0, 0.5)], "b": [(10.0, 0.2), (100.0, 0.6)]}
    text = render_mmu(curves, "mmu")
    assert "0.100" in text and "0.600" in text


def test_format_bytes():
    assert format_bytes(2048) == "2.0KB"
    assert format_bytes(3 * 1024 * 1024) == "3.0MB"
