"""Analysis tables regenerated from a ProfileReport (or its JSON dict).

The report is self-contained: every table must render identically from
the live object and from its JSON round trip, with no re-run.
"""

import json

import pytest

from repro.analysis.profile import (
    attribution_table,
    geometry_heatmap,
    mmu_table,
    pause_table,
    render_profile,
    survival_by_label_table,
    survival_table,
)
from repro.harness.runner import RunOptions, run


@pytest.fixture(scope="module")
def profile():
    report = run(
        "db", "25.25.100", 32 * 1024,
        options=RunOptions(scale=0.4, profile="full"),
    )
    assert report.completed
    return report.profile


def test_tables_render_from_report_and_dict_identically(profile):
    as_dict = json.loads(profile.to_json())
    for table in (survival_table, survival_by_label_table, pause_table,
                  mmu_table, attribution_table, geometry_heatmap):
        assert table(profile) == table(as_dict)
        assert table(profile).strip()


def test_render_profile_contains_every_section(profile):
    text = render_profile(profile)
    for title in ("survival curve", "survivor fraction by belt/space",
                  "pause percentiles", "minimum mutator utilisation",
                  "collection cost attribution", "heap geometry"):
        assert title in text


def test_survival_table_reflects_report_rows(profile):
    text = survival_table(profile)
    assert len(text.splitlines()) >= 3 + len(profile.survival_curve) - 1
    first = profile.survival_curve[0]
    assert f"{first['age_lo_bytes']}..{first['age_hi_bytes']}" in text


def test_geometry_heatmap_words_view(profile):
    frames = geometry_heatmap(profile, value="frames")
    words = geometry_heatmap(profile, value="words")
    assert frames != words
    for label in profile.geometry_labels:
        assert label in frames and label in words


def test_tables_reject_non_reports():
    with pytest.raises(TypeError):
        pause_table(42)
