"""repro.quantiles: the one nearest-rank implementation, and proof that
every percentile-reporting layer actually routes through it."""

import pytest

from repro.quantiles import percentile, percentiles


def test_empty_population_is_zero():
    assert percentile([], 0.5) == 0.0
    assert percentiles([], [0.5, 0.99]) == {0.5: 0.0, 0.99: 0.0}


def test_nearest_rank_cases():
    values = [10.0, 20.0, 30.0, 40.0, 50.0]
    assert percentile(values, 0.0) == 10.0   # rank clamps to 1
    assert percentile(values, 0.5) == 30.0   # ceil(2.5) = 3
    assert percentile(values, 0.6) == 30.0   # ceil(3.0) = 3
    assert percentile(values, 0.61) == 40.0  # ceil(3.05) = 4
    assert percentile(values, 1.0) == 50.0   # the maximum, always
    assert percentile([7.0], 0.001) == 7.0


def test_returns_population_members_never_interpolates():
    values = sorted([3.25, 9.5, 11.0, 97.125])
    for q in (0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0):
        assert percentile(values, q) in values


def test_monotone_in_q():
    values = sorted(float((i * 7919) % 1000) for i in range(100))
    qs = [i / 50 for i in range(51)]
    picked = [percentile(values, q) for q in qs]
    assert picked == sorted(picked)


def test_every_layer_shares_the_single_implementation():
    import repro.analysis.pauses as analysis_pauses
    import repro.obs.profiler.pauses as profiler_pauses
    import repro.quantiles as quantiles
    import repro.workloads.latency as latency

    assert analysis_pauses.percentile is quantiles.percentile
    assert latency.percentile is quantiles.percentile
    assert profiler_pauses.percentile is quantiles.percentile


def test_streaming_and_batch_percentiles_agree():
    from repro.obs.profiler.pauses import StreamingPercentiles

    durations = [float((i * 104729) % 500) + 0.5 for i in range(257)]
    sketch = StreamingPercentiles()
    for duration in durations:
        sketch.add(duration)
    ordered = sorted(durations)
    for q in (0.5, 0.9, 0.99, 0.999, 1.0):
        assert sketch.percentile(q) == percentile(ordered, q)


def test_request_stats_uses_the_shared_floats():
    from repro.workloads.latency import RequestStats

    latencies = [float(v) for v in (5, 1, 9, 7, 3, 8, 2, 6, 4, 10)]
    stats = RequestStats.from_latencies(latencies, offered=10)
    ordered = sorted(latencies)
    assert stats.p50_cycles == percentile(ordered, 0.50)
    assert stats.p90_cycles == percentile(ordered, 0.90)
    assert stats.p99_cycles == percentile(ordered, 0.99)
    assert stats.p999_cycles == percentile(ordered, 0.999)
    assert stats.max_cycles == max(latencies)
    assert stats.mean_cycles == pytest.approx(sum(latencies) / 10)
