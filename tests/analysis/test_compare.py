"""``beltway-bench compare``: artefact diffing and the exit contract.

Exit contract under test: 0 same-or-better, 1 regression past threshold,
2 usage (unreadable/unrecognisable artefact, malformed flags).
"""

import json

import pytest

from repro.analysis.compare import (
    ArtefactError,
    compare_artefacts,
    compare_metrics,
    extract_metrics,
    metric_direction,
)
from repro.harness.cli import main


def _trace_lines(total=100000.0, pauses=((1000.0, 1500.0), (2000.0, 2800.0)),
                 counters=None):
    base = {"benchmark": "b", "collector": "c", "heap_bytes": 1,
            "scale": 1.0, "seed": 1}
    events = [{"kind": "run.start", "time": 0.0, **base}]
    for i, (start, end) in enumerate(pauses, start=1):
        events.append({
            "kind": "gc.end", "time": end, "id": i, "reason": "belt0",
            "belts": [0], "increments": 1, "from_frames": 2,
            "copied_objects": 3, "copied_words": 12, "copied_bytes": 48,
            "freed_frames": 2, "remset_slots": 0, "full_heap": False,
            "pause_start": start, "pause_end": end,
            "pause_cycles": end - start, "heap_frames_in_use": 5,
            "reserve_frames": 1, "wall_s": 0.001,
        })
    events.append({
        "kind": "run.end", "time": total, "completed": True, "failure": "",
        "phases": {}, "counters": dict(counters or {}, run_total_cycles=total),
    })
    return "\n".join(json.dumps(e, sort_keys=True) for e in events) + "\n"


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


# ----------------------------------------------------------------------
# Direction classification
# ----------------------------------------------------------------------
def test_metric_direction_marks():
    assert metric_direction("gc_pause_p99_cycles") == +1
    assert metric_direction("job0.latency_p50") == +1
    assert metric_direction("mmu_1pct") == -1
    assert metric_direction("frontier.c@1.r600.rate_rps") == -1
    assert metric_direction("heap_bytes") == 0
    # Names carrying both marks count bad events: higher-is-worse wins.
    assert metric_direction("paused_requests") == +1


# ----------------------------------------------------------------------
# Metric extraction
# ----------------------------------------------------------------------
def test_extract_trace_metrics(tmp_path):
    path = _write(tmp_path, "a.jsonl", _trace_lines())
    metrics = extract_metrics(path)
    assert metrics["run_total_cycles"] == 100000.0
    assert metrics["gc_pause_p50_cycles"] == 500.0
    assert metrics["gc_max_pause_cycles"] == 800.0
    assert 0.0 < metrics["mmu_1pct"] <= 1.0
    assert not any("wall" in name for name in metrics)


def test_extract_slo_metrics(tmp_path):
    doc = {"frontiers": [{
        "collector": "25.25.100", "heap_bytes": 65536,
        "points": [{"rate_rps": 600.0, "p99_cycles": 1234.0,
                    "completed": True,
                    "distilled": {"gc_inflation_p99": 1.5}}],
    }], "search": {"results": [
        {"collector": "25.25.100", "heap_bytes": 65536,
         "rate_rps": 1800.0, "probes": 5},
    ]}}
    path = _write(tmp_path, "slo.json", json.dumps(doc, indent=1))
    metrics = extract_metrics(path)
    who = "25.25.100@65536"
    assert metrics[f"frontier.{who}.r600.p99_cycles"] == 1234.0
    assert metrics[f"frontier.{who}.r600.distilled.gc_inflation_p99"] == 1.5
    assert metrics[f"search.{who}.rate_rps"] == 1800.0


def test_extract_accepts_compact_single_line_slo_doc(tmp_path):
    """A document dumped without indentation is one line of valid JSON —
    it must still be recognised as a document, not sniffed as JSONL."""
    doc = {"frontiers": [{"collector": "c", "heap_bytes": 1,
                          "points": [{"rate_rps": 600.0,
                                      "p99_cycles": 9.0}]}]}
    path = _write(tmp_path, "compact.json", json.dumps(doc))
    assert extract_metrics(path)["frontier.c@1.r600.p99_cycles"] == 9.0


def test_extract_rejects_garbage(tmp_path):
    with pytest.raises(ArtefactError):
        extract_metrics(tmp_path / "missing.jsonl")
    with pytest.raises(ArtefactError):
        extract_metrics(_write(tmp_path, "empty.jsonl", ""))
    with pytest.raises(ArtefactError):
        extract_metrics(_write(tmp_path, "odd.json", json.dumps({"x": 1},
                                                               indent=1)))


def test_multi_partition_traces_get_prefixed_names(tmp_path):
    path = _write(tmp_path, "two.jsonl",
                  _trace_lines() + _trace_lines(total=50000.0))
    metrics = extract_metrics(path)
    assert "run1.run_total_cycles" in metrics
    assert "run2.run_total_cycles" in metrics


# ----------------------------------------------------------------------
# Comparison semantics
# ----------------------------------------------------------------------
def test_identical_metrics_are_ok():
    metrics = {"gc_pause_p99_cycles": 100.0, "mmu_1pct": 0.9}
    result = compare_metrics(metrics, dict(metrics))
    assert result.ok and not result.improvements
    assert result.checked == 2
    assert "verdict=OK" in result.verdict_line()


def test_regression_past_threshold_flips_verdict():
    a = {"gc_pause_p99_cycles": 100.0}
    b = {"gc_pause_p99_cycles": 110.0}
    result = compare_metrics(a, b, threshold=0.05)
    assert not result.ok
    assert result.regressions[0].regression == pytest.approx(0.10)
    # The same move under a looser threshold is within noise.
    assert compare_metrics(a, b, threshold=0.15).ok


def test_lower_is_worse_direction():
    a = {"mmu_1pct": 0.90}
    b = {"mmu_1pct": 0.50}
    assert not compare_metrics(a, b).ok
    assert compare_metrics(b, a).improvements  # the other way improves


def test_per_metric_threshold_overrides():
    a = {"gc_pause_p99_cycles": 100.0, "job0.latency_p50": 100.0}
    b = {"gc_pause_p99_cycles": 108.0, "job0.latency_p50": 108.0}
    result = compare_metrics(
        a, b, threshold=0.05,
        metric_thresholds={"gc_pause_p99_cycles": 0.20, "latency_p50": 0.20},
    )
    assert result.ok  # both overridden (full name and leaf name)


def test_zero_baseline_uses_absolute_floor():
    # A zero baseline compares against a 1.0 floor instead of dividing
    # by zero: 0 -> 0.03 is a 3% move (ok at 5%), 0 -> 2.0 is 200%.
    assert compare_metrics({"dropped": 0.0}, {"dropped": 0.03}).ok
    assert not compare_metrics({"dropped": 0.0}, {"dropped": 2.0}).ok


def test_direction_free_metrics_never_drive_verdict():
    result = compare_metrics({"heap_bytes": 1.0}, {"heap_bytes": 2.0})
    assert result.ok and result.checked == 0
    assert result.deltas[0].verdict == "info"


def test_disjoint_metrics_are_reported_not_compared():
    result = compare_metrics({"a_only": 1.0}, {"b_only": 2.0})
    assert result.only_baseline == ["a_only"]
    assert result.only_candidate == ["b_only"]
    assert result.ok


# ----------------------------------------------------------------------
# CLI exit contract
# ----------------------------------------------------------------------
def test_cli_identical_artefacts_exit_0(tmp_path, capsys):
    path = _write(tmp_path, "a.jsonl", _trace_lines())
    assert main(["compare", path, path]) == 0
    out = capsys.readouterr().out
    assert "compare: verdict=OK" in out
    assert "threshold=5%" in out


def test_cli_seeded_regression_exits_1(tmp_path, capsys):
    a = _write(tmp_path, "a.jsonl", _trace_lines())
    b = _write(tmp_path, "b.jsonl",
               _trace_lines(pauses=((1000.0, 1700.0), (2000.0, 3100.0))))
    assert main(["compare", a, b]) == 1
    out = capsys.readouterr().out
    assert "verdict=REGRESSION" in out
    assert "gc_pause_p50_cycles" in out


def test_cli_unreadable_artefact_exits_2(tmp_path, capsys):
    a = _write(tmp_path, "a.jsonl", _trace_lines())
    assert main(["compare", a, str(tmp_path / "nope.jsonl")]) == 2
    assert "error:" in capsys.readouterr().err


def test_cli_malformed_flags_exit_2(tmp_path):
    a = _write(tmp_path, "a.jsonl", _trace_lines())
    for bad in (["--metric-threshold", "nope"],
                ["--metric-threshold", "x=abc"],
                ["--metric-threshold", "x=-5"],
                ["--threshold", "-1"]):
        with pytest.raises(SystemExit) as exc:
            main(["compare", a, a] + bad)
        assert exc.value.code == 2


def test_cli_metric_threshold_override(tmp_path):
    a = _write(tmp_path, "a.jsonl", _trace_lines())
    b = _write(tmp_path, "b.jsonl",
               _trace_lines(pauses=((1000.0, 1540.0), (2000.0, 2860.0))))
    assert main(["compare", a, b]) == 1
    assert main(["compare", a, b, "--threshold", "20"]) == 0
    assert main(["compare", a, b,
                 "--metric-threshold", "gc_pause_p50_cycles=50",
                 "--metric-threshold", "gc_pause_p99_cycles=50",
                 "--metric-threshold", "gc_max_pause_cycles=50",
                 "--metric-threshold", "gc_cycles=50",
                 "--metric-threshold", "mmu_1pct=50"]) == 0


def test_compare_artefacts_names_paths(tmp_path):
    path = _write(tmp_path, "a.jsonl", _trace_lines())
    result = compare_artefacts(path, path)
    assert result.baseline == path and result.candidate == path
