"""Tests for the ASCII chart renderer."""

from repro.analysis.plots import ascii_chart


MULT = [1.0, 1.5, 3.0]


def test_chart_contains_axes_and_legend():
    text = ascii_chart(MULT, {"x": [2.0, 1.5, 1.0]}, "T")
    assert text.startswith("T")
    assert "A=x" in text
    assert "2.00" in text and "1.00" in text  # y-axis labels
    assert "1.50" in text  # x tick


def test_chart_places_each_point():
    text = ascii_chart(MULT, {"x": [2.0, 1.5, 1.0]}, "T")
    assert text.count("A") >= 3 + 1  # three points + legend


def test_gap_leaves_blank_column():
    with_gap = ascii_chart(MULT, {"x": [None, 1.5, 1.0]}, "T")
    without = ascii_chart(MULT, {"x": [2.0, 1.5, 1.0]}, "T")
    assert with_gap.count("A") == without.count("A") - 1


def test_coincident_curves_starred():
    text = ascii_chart(MULT, {"x": [1.0, 1.0, 1.0], "y": [1.0, 1.0, 1.0]}, "T")
    assert "*" in text


def test_two_series_two_glyphs():
    text = ascii_chart(MULT, {"x": [2.0, 1.6, 1.2], "y": [1.8, 1.4, 1.0]}, "T")
    assert "A=x" in text and "B=y" in text
    assert "B" in text.split("\n")[1:][0] or any(
        "B" in line for line in text.splitlines()[1:-2]
    )


def test_empty_and_degenerate_inputs():
    assert "(no data)" in ascii_chart(MULT, {}, "T")
    assert "(all runs failed)" in ascii_chart(MULT, {"x": [None, None, None]}, "T")
    # constant series must not divide by zero
    text = ascii_chart(MULT, {"x": [1.0, 1.0, 1.0]}, "T")
    assert "A" in text


def test_extremes_on_boundary_rows():
    text = ascii_chart(MULT, {"x": [5.0, 3.0, 1.0]}, "T", height=10)
    lines = text.splitlines()
    top_row = lines[1]
    bottom_row = lines[10]
    assert "A" in top_row  # the max lands on the top row
    assert "A" in bottom_row  # the min lands on the bottom row
