"""Differential testing of the MMU implementation against a brute force.

The production MMU evaluates only candidate window anchors; the oracle
here slides a window densely across the timeline.  On random pause
timelines the two must agree (the oracle can only ever find utilisation
>= the anchored minimum if the anchor argument is correct, and sampling
cannot go below the true minimum)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.mmu import mmu

TOTAL = 1000.0


def brute_force_mmu(pauses, total, window, samples=None):
    if window >= total:
        window = total
    if samples is None:
        # keep the sampling step below half the window so no candidate
        # worst window can fall between samples
        samples = min(40000, max(800, int(4 * total / window)))
    worst = 1.0
    for i in range(samples + 1):
        t0 = (total - window) * i / samples
        t1 = t0 + window
        paused = sum(
            max(0.0, min(end, t1) - max(start, t0)) for start, end in pauses
        )
        worst = min(worst, 1.0 - paused / window)
    return worst


def timelines():
    return st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=900),
            st.floats(min_value=0.5, max_value=60),
        ),
        max_size=10,
    ).map(_normalise)


def _normalise(raw):
    pauses = []
    cursor = 0.0
    for start, duration in sorted(raw):
        begin = max(start, cursor)
        end = begin + duration
        if end >= TOTAL:
            break
        pauses.append((begin, end))
        cursor = end + 0.5
    return pauses


@given(timelines(), st.floats(min_value=1.0, max_value=1000.0))
@settings(max_examples=120, deadline=None)
def test_mmu_matches_brute_force(pauses, window):
    fast = mmu(pauses, TOTAL, window)
    slow = brute_force_mmu(pauses, TOTAL, window)
    # The oracle samples, so it may miss the exact minimum by a sliver —
    # but it must never find a *lower* utilisation than the exact answer.
    assert fast <= slow + 1e-9
    # step <= window/4, so the sampled minimum can overshoot the
    # exact one by at most ~1/8 of the window
    assert fast >= slow - 0.15


@given(timelines())
@settings(max_examples=60, deadline=None)
def test_mmu_monotone_in_window(pauses):
    values = [mmu(pauses, TOTAL, w) for w in (5, 20, 80, 320, 1000)]
    for a, b in zip(values, values[1:]):
        assert a <= b + 1e-9
