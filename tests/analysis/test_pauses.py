"""Tests for pause-time distribution analysis."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.pauses import (
    histogram,
    percentile,
    render_histogram,
    summarise,
    worst_cluster,
)


PAUSES = [(0, 10), (50, 55), (100, 140), (200, 202)]


def test_summarise_basics():
    out = summarise(PAUSES)
    assert out.count == 4
    assert out.total == 10 + 5 + 40 + 2
    assert out.mean == pytest.approx(57 / 4)
    assert out.max == 40
    assert out.p50 in (5, 10)
    assert "n=4" in out.row()


def test_summarise_empty():
    out = summarise([])
    assert out.count == 0 and out.max == 0.0


def test_percentile_nearest_rank():
    values = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
    assert percentile(values, 0.5) == 5
    assert percentile(values, 0.9) == 9
    assert percentile(values, 0.99) == 10
    assert percentile(values, 0.01) == 1
    assert percentile([], 0.5) == 0.0


@given(st.lists(st.floats(min_value=0.1, max_value=1000), min_size=1, max_size=40))
def test_percentile_bounds(durations):
    values = sorted(durations)
    for q in (0.1, 0.5, 0.9, 1.0):
        p = percentile(values, q)
        assert values[0] <= p <= values[-1]


def test_histogram_covers_all_pauses():
    rows = histogram(PAUSES, buckets=4)
    assert sum(count for _, _, count in rows) == len(PAUSES)
    los = [lo for lo, _, _ in rows]
    assert los == sorted(los)


def test_histogram_single_value():
    rows = histogram([(0, 5), (10, 15)], buckets=4)
    assert sum(c for _, _, c in rows) == 2


def test_histogram_empty():
    assert histogram([]) == []
    assert render_histogram([]) == "(no pauses)"


def test_render_histogram_bars():
    text = render_histogram(PAUSES, buckets=3)
    assert "#" in text
    assert len(text.splitlines()) == 3


def test_worst_cluster_sees_adjacent_pauses():
    clustered = [(0, 10), (12, 22)]
    spread = [(0, 10), (500, 510)]
    total = 1000.0
    assert worst_cluster(clustered, 30, total) == pytest.approx(20)
    assert worst_cluster(spread, 30, total) == pytest.approx(10)
    assert worst_cluster([], 30, total) == 0.0


def test_worst_cluster_never_exceeds_window():
    value = worst_cluster(PAUSES, 25, 300.0)
    assert value <= 25
