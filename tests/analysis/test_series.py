"""Unit tests for series arithmetic (geomean, relative-to-best, gaps)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.series import (
    best_value,
    geomean_across,
    geometric_mean,
    improvement_percent,
    relative_to_best,
)


def test_geometric_mean_basics():
    assert geometric_mean([4, 4]) == pytest.approx(4)
    assert geometric_mean([1, 100]) == pytest.approx(10)
    with pytest.raises(ValueError):
        geometric_mean([])
    with pytest.raises(ValueError):
        geometric_mean([1, 0])


@given(st.lists(st.floats(min_value=0.01, max_value=1e6), min_size=1, max_size=20))
def test_geometric_mean_bounds(values):
    mean = geometric_mean(values)
    assert min(values) <= mean * (1 + 1e-9)
    assert mean <= max(values) * (1 + 1e-9)


@given(
    st.lists(st.floats(min_value=0.01, max_value=1e3), min_size=1, max_size=10),
    st.floats(min_value=0.1, max_value=10),
)
def test_geometric_mean_scale_invariant(values, factor):
    scaled = [v * factor for v in values]
    assert geometric_mean(scaled) == pytest.approx(
        geometric_mean(values) * factor, rel=1e-6
    )


def test_geomean_across_alignment():
    out = geomean_across([[1.0, 4.0], [4.0, 9.0]])
    assert out[0] == pytest.approx(2.0)
    assert out[1] == pytest.approx(6.0)
    with pytest.raises(ValueError):
        geomean_across([[1.0], [1.0, 2.0]])


def test_geomean_across_gap_propagates():
    out = geomean_across([[1.0, None], [4.0, 9.0]])
    assert out[0] == pytest.approx(2.0)
    assert out[1] is None


def test_relative_to_best():
    series = {"a": [2.0, 4.0], "b": [8.0, None]}
    rel = relative_to_best(series)
    assert rel["a"] == [pytest.approx(1.0), pytest.approx(2.0)]
    assert rel["b"][0] == pytest.approx(4.0)
    assert rel["b"][1] is None


def test_relative_to_best_all_gaps():
    series = {"a": [None, None]}
    assert relative_to_best(series) == {"a": [None, None]}


def test_best_value():
    assert best_value({"a": [3.0, None], "b": [5.0, 2.0]}) == 2.0
    assert best_value({"a": [None]}) is None


def test_improvement_percent():
    assert improvement_percent(100.0, 60.0) == pytest.approx(40.0)
    assert improvement_percent(100.0, 100.0) == 0.0
    assert improvement_percent(100.0, 110.0) == pytest.approx(-10.0)
