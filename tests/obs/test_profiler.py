"""The GC profiler: parity, bit-identity, and demographic shape.

Acceptance criteria pinned here:

* **detached**: a VM that attached and then detached the profiler (and a
  run that never asked for one) reproduces the golden fixed-seed
  counters bit-identically for all six specs;
* **attached**: an attached run's RunStats still match the golden
  counters (reads-never-acts), and the streamed pause percentiles,
  incremental MMU curve and cost attribution agree exactly with the
  post-hoc analysis layer on the same run;
* **shape**: nursery survivor fractions sit below old-object survivor
  fractions on jess and db at generational-shaped configurations.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.mmu import mmu, mmu_curve, mmu_curve_from_events
from repro.analysis.pauses import percentile, summarise
from repro.bench.engine import SyntheticMutator
from repro.bench.spec import BENCHMARK_NAMES, benchmark_spec
from repro.errors import ConfigError
from repro.harness.runner import RunOptions, run
from repro.obs import validate_events
from repro.obs.profiler import (
    DEFAULT_STREAM_WINDOWS,
    IncrementalMMU,
    ProfileOptions,
    ProfileReport,
    StreamingPercentiles,
    attach_profiler,
)
from repro.runtime.vm import VM

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "data" / "golden_counters.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

#: RunStats field -> golden key (the stats-visible subset of the fixture).
_STATS_KEYS = {
    "completed": "completed",
    "allocations": "allocations",
    "allocated_bytes": "allocated_bytes",
    "copied_bytes": "copied_bytes",
    "collections": "collections",
    "full_heap_collections": "full_heap_collections",
    "peak_remset_entries": "peak_remset_entries",
    "total_cycles": "total_cycles",
    "gc_cycles": "gc_cycles",
    "mutator_cycles": "mutator_cycles",
}


def _golden_stats(stats, golden):
    got = {g: getattr(stats, s) for s, g in _STATS_KEYS.items()}
    return got, {key: golden[key] for key in got}


# ----------------------------------------------------------------------
# Unit parity: streaming structures vs the post-hoc analysis layer
# ----------------------------------------------------------------------
def test_streaming_percentiles_match_posthoc():
    durations = [17.0, 3.0, 90.0, 3.0, 41.5, 8.0, 120.0, 55.0, 2.0, 77.0]
    sp = StreamingPercentiles()
    for d in durations:
        sp.add(d)
    ranked = sorted(durations)
    for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
        assert sp.percentile(q) == percentile(ranked, q)
    assert sp.max == max(durations)
    assert sp.total == sum(durations)
    summary = sp.summary()
    posthoc = summarise([(0.0, d) for d in durations])
    for field in ("count", "total", "mean", "p50", "p90", "p99", "max"):
        assert summary[field] == getattr(posthoc, field)


SYNTHETIC_PAUSES = [
    (100.0, 150.0),
    (400.0, 420.0),
    (420.0, 500.0),  # back-to-back
    (1000.0, 1500.0),
    (5000.0, 5010.0),
    (9000.0, 9900.0),
]


@pytest.mark.parametrize("total_time", [10_000.0, 9_900.0, 20_000.0])
def test_incremental_mmu_matches_posthoc_on_synthetic_pauses(total_time):
    windows = [1.0, 25.0, 100.0, 333.0, 1024.0, 5000.0, 9999.0, 50_000.0]
    inc = IncrementalMMU(windows)
    for start, end in SYNTHETIC_PAUSES:
        inc.add_pause(start, end)
    streamed = dict(inc.finalise(total_time))
    for w in windows:
        expected = mmu(SYNTHETIC_PAUSES, total_time, w)
        assert streamed[w] == expected
        assert inc.mmu_at(w, total_time) == expected


def test_incremental_mmu_edge_cases():
    empty = IncrementalMMU([10.0])
    assert empty.finalise(100.0) == [(10.0, 1.0)]
    assert empty.mmu_at(10.0, 0.0) == 1.0  # zero-length run

    one = IncrementalMMU([1000.0])
    one.add_pause(5.0, 10.0)
    # Window longer than the run clamps to the run length.
    assert dict(one.finalise(50.0))[1000.0] == mmu([(5.0, 10.0)], 50.0, 1000.0)

    ordered = IncrementalMMU([10.0])
    ordered.add_pause(50.0, 60.0)
    with pytest.raises(ValueError):
        ordered.add_pause(30.0, 40.0)


def test_incremental_mmu_worst_windows_are_attributed():
    inc = IncrementalMMU([100.0])
    for start, end in SYNTHETIC_PAUSES:
        inc.add_pause(start, end)
    inc.finalise(10_000.0)
    rows = inc.worst_windows(10_000.0)
    assert len(rows) == 1
    row = rows[0]
    assert row["window"] == 100.0
    # The worst 100-cycle window sits inside the 500-cycle pause: fully paused.
    assert row["utilisation"] == 0.0
    assert row["paused"] == 100.0


# ----------------------------------------------------------------------
# End-to-end: attached runs match golden stats and post-hoc analytics
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bench_name", BENCHMARK_NAMES)
def test_attached_run_matches_golden_and_posthoc(bench_name):
    """All six specs with the profiler attached: RunStats bit-identical to
    the golden counters; streamed percentiles/MMU identical to the
    post-hoc values computed from the same run's pause intervals and from
    its telemetry events (the incremental-vs-``mmu_curve_from_events``
    point-identity)."""
    cell = f"{bench_name}/25.25.100"
    golden = GOLDEN["cells"][cell]
    report = run(
        bench_name, "25.25.100", golden["heap_bytes"],
        options=RunOptions(
            scale=GOLDEN["scale"], seed=GOLDEN["seed"],
            profile="full", ring_buffer=0,
        ),
    )
    stats = report.stats
    got, expected = _golden_stats(stats, golden)
    assert got == expected

    profile = report.profile
    assert profile is not None

    # Pause percentiles: streamed == post-hoc nearest-rank on the run.
    intervals = stats.pause_intervals()
    posthoc = summarise(intervals)
    for field in ("count", "total", "mean", "p50", "p90", "p99", "max"):
        assert profile.pauses[field] == getattr(posthoc, field)

    # MMU: streamed curve == post-hoc curve from intervals == curve
    # recomputed from the telemetry event stream (point-identical).
    windows = [w for w, _ in profile.mmu_curve]
    assert windows == sorted(set(DEFAULT_STREAM_WINDOWS))
    assert profile.mmu_curve == mmu_curve(intervals, stats.total_cycles, windows)
    assert profile.mmu_curve == mmu_curve_from_events(
        report.events, stats.total_cycles, windows
    )

    # Cost attribution: the modelled decomposition sums *exactly* to the
    # charged pause, per collection (whole-number cost constants).
    assert len(profile.attribution) == stats.collections
    for row in profile.attribution:
        assert row["modelled_cycles"] == row["pause_cycles"]
    totals = profile.attribution_totals
    assert totals["modelled_cycles"] == totals["pause_cycles"]
    assert totals["pause_cycles"] == stats.gc_cycles

    # Census conservation: every stamp resolves exactly once.
    demo = profile.demographics
    assert demo["stamped_objects"] == demo["died_objects"] + demo["censored_objects"]
    assert demo["stamped_bytes"] == demo["died_bytes"] + demo["censored_bytes"]
    assert demo["stamped_bytes"] == stats.allocated_bytes

    # The profiler's own events are schema-valid on the shared bus.
    assert validate_events(report.events) == len(report.events)
    kinds = {e.kind for e in report.events}
    assert "profiler.geometry" in kinds
    if profile.survival_by_collection:
        assert "profiler.survival" in kinds


@pytest.mark.parametrize("collector", ["25.25.MOS", "Appel", "gctk:Appel"])
def test_attached_run_other_collectors_spot_checks(collector):
    """jess across the other golden collectors: stats stay bit-identical
    with the profiler attached, attribution stays exact."""
    golden = GOLDEN["cells"][f"jess/{collector}"]
    report = run(
        "jess", collector, golden["heap_bytes"],
        options=RunOptions(
            scale=GOLDEN["scale"], seed=GOLDEN["seed"], profile="full",
        ),
    )
    got, expected = _golden_stats(report.stats, golden)
    assert got == expected
    for row in report.profile.attribution:
        assert row["modelled_cycles"] == row["pause_cycles"]
    intervals = report.stats.pause_intervals()
    posthoc = summarise(intervals)
    assert report.profile.pauses["p99"] == posthoc.p99
    assert report.profile.pauses["max"] == posthoc.max


# ----------------------------------------------------------------------
# Detached bit-identity (compiled out when disabled)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bench_name", BENCHMARK_NAMES)
def test_attach_then_detach_is_bit_identical(bench_name):
    """Attach a profiler to a fresh VM, detach it, run: golden counters.

    Detach removes the instance-attribute wrappers, so from that point
    the VM executes structurally untouched code — same guarantee (and
    same fixture) as the tracer and the sanitizer."""
    cell = f"{bench_name}/25.25.100"
    golden = GOLDEN["cells"][cell]
    spec = benchmark_spec(bench_name, GOLDEN["scale"])
    vm = VM(
        golden["heap_bytes"], collector="25.25.100",
        locality=spec.locality, benchmark_name=spec.name,
    )
    profiler = attach_profiler(vm)
    profiler.detach()
    profiler.detach()  # idempotent
    assert "alloc" not in vars(vm)
    assert "release_frame" not in vars(vm.space)
    stats = SyntheticMutator(vm, spec, seed=GOLDEN["seed"]).run()
    got, expected = _golden_stats(stats, golden)
    assert got == expected


# ----------------------------------------------------------------------
# Demographic shape: the generational hypothesis, observed
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "bench_name,collector,heap_kb",
    [("jess", "Appel", 40), ("db", "25.25.100", 32)],
)
def test_nursery_survival_below_old_survival(bench_name, collector, heap_kb):
    """Belt-0 (nursery) survivor fraction sits below the older belts':
    young objects die, survivors that reached an old belt keep living."""
    report = run(
        bench_name, collector, heap_kb * 1024,
        options=RunOptions(scale=0.4, profile="full"),
    )
    assert report.completed
    by_label = {r["label"]: r for r in report.profile.survival_by_label}
    assert "belt0" in by_label
    older = [r for label, r in by_label.items() if label != "belt0"]
    assert older, "run never promoted anything — heap too large for the test"
    nursery = by_label["belt0"]["survivor_fraction"]
    assert nursery < max(r["survivor_fraction"] for r in older)

    # The survival curve exists, is byte-weighted, and is monotone
    # non-increasing in age by construction.
    curve = report.profile.survival_curve
    assert curve
    fractions = [row["surviving_fraction"] for row in curve]
    assert fractions == sorted(fractions, reverse=True)


# ----------------------------------------------------------------------
# Report plumbing
# ----------------------------------------------------------------------
def test_report_roundtrip_and_markdown():
    report = run(
        "jess", "25.25.100", 48 * 1024,
        options=RunOptions(scale=0.2, profile="full"),
    )
    profile = report.profile
    rebuilt = ProfileReport.from_dict(json.loads(profile.to_json()))
    assert rebuilt.to_dict() == profile.to_dict()
    assert rebuilt.mmu_curve == profile.mmu_curve

    markdown = profile.to_markdown()
    for section in ("# GC profile: jess / 25.25.100",
                    "## Lifetime demographics", "## Pause analytics",
                    "## Cost attribution", "## Heap geometry"):
        assert section in markdown

    # Geometry: every sample's per-label frames sum to frames_in_use.
    for row in profile.geometry:
        assert sum(c[0] for c in row["occupancy"].values()) == row["frames_in_use"]


def test_profile_true_keeps_legacy_meaning():
    report = run(
        "jess", "25.25.100", 48 * 1024,
        options=RunOptions(scale=0.1, profile=True),
    )
    assert report.phases is not None
    assert report.profile is None


def test_profile_options_instance_and_bad_value():
    report = run(
        "jess", "25.25.100", 48 * 1024,
        options=RunOptions(
            scale=0.1, profile=ProfileOptions(emit_events=False), ring_buffer=0,
        ),
    )
    assert report.profile is not None
    assert not any(e.kind.startswith("profiler.") for e in report.events)

    with pytest.raises(ConfigError):
        run("jess", "25.25.100", 48 * 1024,
            options=RunOptions(profile="yes please"))
