"""The span model and the Perfetto exporter (``repro.obs.trace``).

Spans are derived purely from the event stream — the builder never
touches the VM — so every test here works off either a live run's
telemetry or a hand-built synthetic stream.
"""

import json

import pytest

from repro.grid import ResultStore, execute_jobs
from repro.harness.runner import RunOptions, run
from repro.obs import RingBufferSink, TelemetryBus
from repro.obs.trace import (
    PHASE_COMPONENTS,
    TraceExportSink,
    build_timeline,
    to_perfetto,
    validate_perfetto,
    write_perfetto,
)

SCALE = 0.2
JOBS = [
    ("jess", "25.25.100", 24 * 1024, SCALE, 13),
    ("jess", "gctk:Appel", 24 * 1024, SCALE, 13),
]


@pytest.fixture(scope="module")
def campaign_events():
    """One cold two-cell campaign's merged telemetry."""
    bus = TelemetryBus()
    ring = bus.subscribe(RingBufferSink(capacity=65536))
    execute_jobs(JOBS, parallel=False, bus=bus)
    return ring.events


@pytest.fixture(scope="module")
def timeline(campaign_events):
    return build_timeline(campaign_events)


# ----------------------------------------------------------------------
# Span hierarchy and deterministic ids
# ----------------------------------------------------------------------
def test_timeline_has_one_run_span_per_job(timeline):
    runs = timeline.of_cat("run")
    assert [s.sid for s in runs] == ["job:0/run", "job:1/run"]
    assert runs[0].name == "jess 25.25.100@24576"
    assert runs[0].start == 0.0 and runs[0].end > 0
    assert runs[0].attrs["completed"] is True


def test_gc_spans_nest_inside_their_run(timeline):
    gcs = timeline.of_cat("gc")
    assert gcs, "the 24KB heap must collect at least once"
    for span in gcs:
        assert span.parent in ("job:0/run", "job:1/run")
        prefix = span.parent.rsplit("/", 1)[0]
        assert span.sid.startswith(f"{prefix}/gc:")
        run = next(s for s in timeline.of_cat("run") if s.sid == span.parent)
        assert run.start <= span.start <= span.end <= run.end
        assert span.name.startswith("gc ")
        assert span.attrs["worker"] > 0


def test_gc_ids_are_one_based_per_run(timeline):
    ordinals = [
        int(s.sid.rsplit(":", 1)[1])
        for s in timeline.of_cat("gc")
        if s.parent == "job:0/run"
    ]
    assert ordinals == list(range(1, len(ordinals) + 1))


def test_phase_spans_tile_their_pause_exactly(timeline):
    gcs = {s.sid: s for s in timeline.of_cat("gc")}
    phases = timeline.of_cat("phase")
    assert phases, "enriched gc.end events must decompose into phases"
    by_gc = {}
    for span in phases:
        by_gc.setdefault(span.parent, []).append(span)
        assert span.name in PHASE_COMPONENTS
    for gc_sid, children in by_gc.items():
        pause = gcs[gc_sid]
        assert children[0].start == pause.start
        assert children[-1].end == pause.end
        for left, right in zip(children, children[1:]):
            assert left.end == right.start  # contiguous, no gaps
        assert sum(c.duration for c in children) == pause.duration


def test_campaign_spans_cover_grid_cells(timeline):
    grids = timeline.of_cat("grid")
    assert [s.sid for s in grids] == ["grid:0", "grid:1"]
    assert grids[0].attrs["status"] == "done"
    assert grids[0].track == ("campaign", "job:0")


def test_unknown_kinds_are_counted_not_raised():
    stream = [
        {"kind": "grid.mystery", "time": 0.0, "x": 1},
        {"kind": "run.start", "time": 0.0, "benchmark": "b",
         "collector": "c", "heap_bytes": 1, "scale": 1.0, "seed": 1},
    ]
    timeline = build_timeline(stream)
    assert timeline.attrs["ignored"] == 1
    assert len(timeline.of_cat("run")) == 1


def test_recurring_job_ordinal_gets_segment_suffixes():
    """Adaptive searches re-dispatch single-cell batches, so ordinal 0
    recurs; each run must land in its own partition."""
    def mini_run(n):
        return [
            {"kind": "run.start", "time": 0.0, "job": 0, "benchmark": "b",
             "collector": "c", "heap_bytes": n, "scale": 1.0, "seed": 1},
            {"kind": "run.end", "time": 100.0, "job": 0, "completed": True,
             "counters": {"run_total_cycles": 100.0}},
        ]
    timeline = build_timeline(mini_run(1) + mini_run(2) + mini_run(3))
    assert [s.sid for s in timeline.of_cat("run")] == [
        "job:0/run", "job:0#2/run", "job:0#3/run",
    ]


def test_request_spans_pair_start_and_end():
    stream = [
        {"kind": "run.start", "time": 0.0, "benchmark": "b",
         "collector": "c", "heap_bytes": 1, "scale": 1.0, "seed": 1},
        {"kind": "request.start", "time": 10.0, "id": 7, "task": "get",
         "queue_depth": 0},
        {"kind": "request.end", "time": 25.0, "id": 7, "task": "get",
         "latency_cycles": 15.0, "gc_pauses": 0, "queue_depth": 0},
        {"kind": "run.end", "time": 100.0, "completed": True,
         "counters": {"run_total_cycles": 100.0}},
    ]
    timeline = build_timeline(stream)
    requests = timeline.of_cat("request")
    assert len(requests) == 1
    span = requests[0]
    assert (span.start, span.end) == (10.0, 25.0)
    assert span.track == ("run:1", "requests")
    assert span.parent == "run:1/run"
    assert span.attrs["latency_cycles"] == 15.0


# ----------------------------------------------------------------------
# Cold/warm canonical identity
# ----------------------------------------------------------------------
def test_canonical_projection_is_identical_cold_and_warm(tmp_path):
    store = ResultStore(tmp_path / "s")

    def capture():
        bus = TelemetryBus()
        ring = bus.subscribe(RingBufferSink(capacity=65536))
        execute_jobs(JOBS, store=store, parallel=False, bus=bus)
        return build_timeline(ring.events).canonical()

    cold = capture()
    warm = capture()
    assert cold  # run + gc spans present
    assert json.dumps(cold, sort_keys=True) == json.dumps(warm, sort_keys=True)


# ----------------------------------------------------------------------
# Perfetto export
# ----------------------------------------------------------------------
def test_export_validates_and_counts_spans(timeline):
    doc = to_perfetto(timeline)
    assert validate_perfetto(doc) == len(timeline.spans)
    assert doc["displayTimeUnit"] == "ms"


def test_export_metadata_names_processes_and_threads(timeline):
    doc = to_perfetto(timeline)
    meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
    names = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
    assert "campaign" in names
    assert any(n.startswith("job:0") for n in names)
    threads = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
    assert "vm" in threads


def test_export_args_carry_span_ids(timeline):
    doc = to_perfetto(timeline)
    ids = {
        e["args"]["id"]
        for e in doc["traceEvents"]
        if e["ph"] == "X"
    }
    assert "job:0/run" in ids and "grid:0" in ids


def test_write_perfetto_roundtrip(tmp_path, timeline):
    target = tmp_path / "out.perfetto.json"
    write_perfetto(timeline, target)
    doc = json.loads(target.read_text())
    assert validate_perfetto(doc) == len(timeline.spans)


def test_validate_rejects_nonmonotone_track():
    bad = {"traceEvents": [
        {"ph": "X", "pid": 1, "tid": 1, "name": "a", "ts": 10.0, "dur": 1.0,
         "cat": "run", "args": {"id": "a"}},
        {"ph": "X", "pid": 1, "tid": 1, "name": "b", "ts": 5.0, "dur": 1.0,
         "cat": "run", "args": {"id": "b"}},
    ]}
    with pytest.raises(ValueError, match="monotone"):
        validate_perfetto(bad)


def test_validate_rejects_missing_fields():
    with pytest.raises(ValueError):
        validate_perfetto({"traceEvents": [{"ph": "X", "pid": 1}]})
    with pytest.raises(ValueError):
        validate_perfetto({"traceEvents": [
            {"ph": "Q", "pid": 1, "tid": 1, "name": "x", "ts": 0, "dur": 1},
        ]})


# ----------------------------------------------------------------------
# TraceExportSink: run -> Perfetto in one step
# ----------------------------------------------------------------------
def test_trace_export_sink_writes_on_close(tmp_path):
    target = tmp_path / "run.perfetto.json"
    sink = TraceExportSink(target)
    run("jess", "25.25.100", 24 * 1024,
        options=RunOptions(scale=SCALE, seed=13, sinks=(sink,)))
    assert not target.exists()  # nothing written until close
    sink.close()
    assert sink.closed and sink.spans_written > 0
    doc = json.loads(target.read_text())
    assert validate_perfetto(doc) == sink.spans_written
    sink.close()  # idempotent
