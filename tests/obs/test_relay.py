"""The cross-process telemetry relay: bounded forwarding, loss accounting.

The drop contract under test (see ``repro.obs.relay``): the forwarding
buffer keeps a contiguous causal *prefix* of the worker's stream
(drop-newest), every drop is counted, and the counts surface in the
campaign report, on the terminal ``grid.job`` event, and in the
:class:`DropTally` — never silently.
"""

from repro.grid import ResultStore, execute_jobs
from repro.obs import Event, RingBufferSink, TelemetryBus
from repro.obs.events import validate_events
from repro.obs.relay import (
    DEFAULT_FORWARD_CAPACITY,
    DropTally,
    ForwardedCell,
    ForwardingSink,
    replay_events,
)
from repro.obs.trace import build_timeline

SCALE = 0.2
JOB = ("jess", "25.25.100", 24 * 1024, SCALE, 13)


def _event(i):
    return Event("phase", float(i), {"name": f"p{i}", "wall_s": 0.0})


# ----------------------------------------------------------------------
# ForwardingSink
# ----------------------------------------------------------------------
def test_forwarding_sink_keeps_everything_under_capacity():
    sink = ForwardingSink(capacity=8)
    for i in range(5):
        sink.accept(_event(i))
    assert sink.accepted == 5 and sink.dropped == 0
    assert [t for _, t, _ in sink.events] == [0.0, 1.0, 2.0, 3.0, 4.0]


def test_forwarding_sink_drops_newest_on_overflow():
    sink = ForwardingSink(capacity=3)
    for i in range(10):
        sink.accept(_event(i))
    assert sink.accepted == 10
    assert sink.dropped == 7
    # The retained events are the contiguous *head* of the stream: a
    # drop-oldest policy would orphan gc.end events from their run.start.
    assert [t for _, t, _ in sink.events] == [0.0, 1.0, 2.0]
    assert sink.accepted == len(sink.events) + sink.dropped


def test_forwarding_sink_unbounded_and_default():
    assert ForwardingSink().capacity == DEFAULT_FORWARD_CAPACITY
    sink = ForwardingSink(capacity=None)
    for i in range(20000):
        sink.accept(_event(i))
    assert sink.dropped == 0 and len(sink.events) == 20000


def test_forwarding_sink_rejects_nonpositive_capacity():
    import pytest

    with pytest.raises(ValueError):
        ForwardingSink(capacity=0)


def test_forwarding_sink_snapshots_event_data():
    sink = ForwardingSink(capacity=4)
    event = _event(0)
    sink.accept(event)
    event.data["name"] = "mutated"
    assert sink.events[0][2]["name"] == "p0"


# ----------------------------------------------------------------------
# replay_events + DropTally
# ----------------------------------------------------------------------
def test_replay_tags_worker_job_and_key():
    sink = ForwardingSink(capacity=4)
    for i in range(3):
        sink.accept(_event(i))
    bus = TelemetryBus()
    ring = bus.subscribe(RingBufferSink(capacity=16))
    count = replay_events(bus, sink.events, worker=4242, job=7, key="k123")
    assert count == 3
    for event in ring.events:
        assert event.data["worker"] == 4242
        assert event.data["job"] == 7
        assert event.data["key"] == "k123"
    # Tags are extra keys; the replayed events stay schema-valid.
    assert validate_events(ring.events) == 3


def test_drop_tally_sums_grid_job_annotations():
    tally = DropTally()
    tally.accept(Event("grid.job", 0.0, {"forwarded_events": 10,
                                         "forwarded_dropped": 3}))
    tally.accept(Event("grid.job", 1.0, {"forwarded_events": 5}))
    tally.accept(Event("phase", 2.0, {"forwarded_dropped": 99}))  # ignored
    assert tally.forwarded == 15
    assert tally.dropped == 3


# ----------------------------------------------------------------------
# Executor integration: overflow is loud, the timeline stays coherent
# ----------------------------------------------------------------------
def test_executor_overflow_is_counted_and_timeline_stays_coherent(tmp_path):
    bus = TelemetryBus()
    ring = bus.subscribe(RingBufferSink(capacity=65536))
    tally = bus.subscribe(DropTally())
    report = execute_jobs([JOB], parallel=False, bus=bus, forward_capacity=16)
    assert report.forwarded_events == 16
    assert report.forwarded_dropped > 0
    # The terminal grid.job event carries the same accounting ...
    done = [e for e in ring.events if e.kind == "grid.job"][-1]
    assert done.data["forwarded_events"] == 16
    assert done.data["forwarded_dropped"] == report.forwarded_dropped
    # ... and the tally saw it without access to the report.
    assert tally.forwarded == 16
    assert tally.dropped == report.forwarded_dropped
    # The merged timeline is truncated, not corrupt: the run span closes
    # at the last observed instant and the truncation is flagged.
    timeline = build_timeline(ring.events)
    runs = timeline.of_cat("run")
    assert len(runs) == 1
    assert runs[0].attrs.get("truncated") is True
    assert timeline.attrs["truncated"] == ["job:0"]
    for span in timeline.of_cat("gc"):
        assert runs[0].start <= span.start <= span.end <= runs[0].end


def test_executor_forwarding_report_counts_lossless_case():
    bus = TelemetryBus()
    ring = bus.subscribe(RingBufferSink(capacity=65536))
    report = execute_jobs([JOB], parallel=False, bus=bus)
    assert report.forwarded_dropped == 0
    assert report.forwarded_events > 0
    kinds = {e.kind for e in ring.events}
    assert {"run.start", "gc.end", "run.end", "grid.job"} <= kinds


def test_executor_without_bus_does_not_forward():
    report = execute_jobs([JOB], parallel=False)
    assert report.forwarded_events == 0 and report.forwarded_dropped == 0


def test_custom_cell_runner_may_return_forwarded_cell():
    bus = TelemetryBus()
    ring = bus.subscribe(RingBufferSink(capacity=64))
    report = execute_jobs(
        [JOB], parallel=False, bus=bus, cell_runner=_wrapped_runner
    )
    assert report.results[0].completed
    assert report.forwarded_events == 1
    assert report.forwarded_dropped == 2
    replayed = [e for e in ring.events if e.kind == "phase"]
    assert replayed and replayed[0].data["worker"] == 99


def _wrapped_runner(job):
    from repro.grid.executor import _default_runner

    return ForwardedCell(
        result=_default_runner(job),
        events=[("phase", 0.0, {"name": "x", "wall_s": 0.0})],
        dropped=2,
        worker=99,
    )
