"""The golden span timeline: tier- and replay-invariance (ISSUE 10).

``tests/data/golden_trace.json`` pins the canonical projection (run + gc
spans) of a small fixed-seed campaign.  Every substrate tier must
reproduce it bit for bit, cold or warm — span ids are built from input
ordinals and collection ordinals, never from store keys or host state,
precisely so this test can exist.

Regenerate (only after an intentional engine/cost-model change)::

    PYTHONPATH=src python tests/data/capture_golden_trace.py
"""

import json
import os
from pathlib import Path

import pytest

from repro.grid import ResultStore, execute_jobs
from repro.kernels import TIER_ENV, available
from repro.obs import RingBufferSink, TelemetryBus
from repro.obs.trace import build_timeline

GOLDEN = json.loads(
    (Path(__file__).resolve().parents[1] / "data" / "golden_trace.json")
    .read_text()
)
JOBS = [tuple(job) for job in GOLDEN["jobs"]]
TIERS = ("python", "numpy", "cffi")


def _canonical(store=None):
    bus = TelemetryBus()
    ring = bus.subscribe(RingBufferSink(capacity=65536))
    execute_jobs(JOBS, store=store, parallel=False, bus=bus)
    return build_timeline(ring.events).canonical()


@pytest.fixture
def tier_env():
    saved = os.environ.get(TIER_ENV)
    yield
    if saved is None:
        os.environ.pop(TIER_ENV, None)
    else:
        os.environ[TIER_ENV] = saved


@pytest.mark.parametrize("tier", TIERS)
def test_canonical_timeline_matches_golden_on_every_tier(tier, tier_env):
    status = available().get(tier, "unknown tier")
    if not status.startswith("ok"):
        pytest.skip(f"{tier} tier unavailable: {status}")
    os.environ[TIER_ENV] = tier
    assert _canonical() == GOLDEN["canonical"]


def test_warm_replay_matches_golden(tmp_path):
    store = ResultStore(tmp_path / "s")
    assert _canonical(store) == GOLDEN["canonical"]  # cold fill
    warm = _canonical(store)  # pure run.replay synthesis
    assert warm == GOLDEN["canonical"]
