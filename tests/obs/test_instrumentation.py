"""Instrumentation invariants: events reconcile with stats, counters
never move.

The layering rule under test (DESIGN.md §10): attaching telemetry may
*read* counters and the simulated clock but must not change a single
one — memory accesses, barrier counts, remset totals and cost-model
cycles of an instrumented run are bit-identical to an untouched run.
"""

import pytest

from repro.bench.engine import SyntheticMutator
from repro.bench.spec import benchmark_spec
from repro.obs import RingBufferSink, TelemetryBus, attach, validate_events
from repro.runtime import MutatorContext, VM

SEED = 13
SCALE = 0.2
HEAP = 48 * 1024


def _fingerprint(vm, stats):
    barrier = vm.plan.barrier.stats
    return {
        "load_count": vm.space.load_count,
        "store_count": vm.space.store_count,
        "barrier_fast": barrier.fast_path,
        "barrier_slow": barrier.slow_path,
        "barrier_null": barrier.null_stores,
        "remset_inserts": vm.plan.remsets.inserts,
        "allocations": stats.allocations,
        "copied_bytes": stats.copied_bytes,
        "collections": stats.collections,
        "total_cycles": stats.total_cycles,
        "gc_cycles": stats.gc_cycles,
        "mutator_cycles": stats.mutator_cycles,
    }


def _run(collector, instrumented):
    spec = benchmark_spec("jess", SCALE)
    vm = VM(HEAP, collector=collector, locality=spec.locality,
            benchmark_name=spec.name)
    ring = None
    if instrumented:
        bus = TelemetryBus()
        ring = bus.subscribe(RingBufferSink())
        attach(vm, bus, snapshot_every=1)
    stats = SyntheticMutator(vm, spec, seed=SEED).run()
    return vm, stats, ring


@pytest.mark.parametrize("collector", ["25.25.100", "gctk:Appel"])
def test_attached_telemetry_does_not_perturb_counters(collector):
    vm_plain, stats_plain, _ = _run(collector, instrumented=False)
    vm_obs, stats_obs, ring = _run(collector, instrumented=True)
    assert _fingerprint(vm_obs, stats_obs) == _fingerprint(vm_plain, stats_plain)
    assert ring.of_kind("gc.end")  # it really was observing


def test_events_reconcile_with_stats():
    vm, stats, ring = _run("25.25.100", instrumented=True)
    validate_events(ring.events)
    ends = ring.of_kind("gc.end")
    assert len(ends) == stats.collections
    assert sum(e.data["copied_bytes"] for e in ends) == stats.copied_bytes
    assert sum(e.data["pause_cycles"] for e in ends) == pytest.approx(
        stats.gc_cycles
    )
    starts = ring.of_kind("gc.start")
    assert len(starts) >= 1
    # remset.batch inserts telescope towards the run's insert total;
    # inserts after the final collection are flushed by ``end()``
    # (exercised by the run()-API tests), so here: a lower bound.
    batches = ring.of_kind("remset.batch")
    assert 0 <= sum(b.data["inserts"] for b in batches) <= vm.plan.remsets.inserts
    # one snapshot per collection at snapshot_every=1
    assert len(ring.of_kind("heap.snapshot")) == stats.collections
    times = [e.time for e in ring.events]
    assert times == sorted(times)


def test_gc_end_reserve_and_occupancy_fields():
    _, _, ring = _run("25.25.100", instrumented=True)
    for event in ring.of_kind("gc.end"):
        assert event.data["reserve_frames"] >= 0
        assert event.data["heap_frames_in_use"] >= 0
        assert event.data["pause_end"] >= event.data["pause_start"]
    for snap in ring.of_kind("heap.snapshot"):
        assert snap.data["frames_in_use"] <= snap.data["frames_total"]


def test_alloc_region_events_cover_frame_acquisitions():
    vm, _, ring = _run("25.25.100", instrumented=True)
    rollovers = ring.of_kind("alloc.region")
    assert rollovers
    frames = {e.data["frame"] for e in rollovers}
    assert all(0 <= f < vm.space.heap_frames for f in frames)


def test_snapshot_every_zero_disables_periodic():
    vm = VM(16 * 1024, collector="25.25.100", boot_ballast_slots=0)
    vm.define_type("node", nrefs=2, nscalars=1)
    bus = TelemetryBus()
    ring = bus.subscribe(RingBufferSink())
    inst = attach(vm, bus, snapshot_every=0)
    mu = MutatorContext(vm)
    node = vm.types.by_name("node")
    for _ in range(2000):
        mu.alloc(node).drop()
    assert ring.of_kind("gc.end")
    assert not ring.of_kind("heap.snapshot")
    inst.snapshot_now()  # on-demand still works
    assert len(ring.of_kind("heap.snapshot")) == 1


def test_negative_snapshot_every_rejected():
    vm = VM(16 * 1024, collector="25.25.100", boot_ballast_slots=0)
    with pytest.raises(ValueError):
        attach(vm, TelemetryBus(), snapshot_every=-1)


def test_vm_attach_telemetry_convenience():
    vm = VM(16 * 1024, collector="25.25.100", boot_ballast_slots=0)
    vm.define_type("node", nrefs=2, nscalars=1)
    bus = TelemetryBus()
    ring = bus.subscribe(RingBufferSink())
    vm.attach_telemetry(bus, snapshot_every=1)
    mu = MutatorContext(vm)
    node = vm.types.by_name("node")
    for _ in range(1500):
        mu.alloc(node).drop()
    assert ring.of_kind("gc.end")
