"""Unit tests for the telemetry bus, event schemas, and the three sinks."""

import io
import json

import pytest

from repro.obs import (
    CounterSink,
    Event,
    JsonlSink,
    RingBufferSink,
    SchemaError,
    TelemetryBus,
    load_jsonl,
    pauses_from_events,
    validate_event,
    validate_events,
)


def _gc_end(time=100.0, **over):
    data = {
        "id": 1, "reason": "belt0", "belts": [0], "increments": 1,
        "from_frames": 2, "copied_objects": 3, "copied_words": 12,
        "copied_bytes": 48, "freed_frames": 2, "remset_slots": 0,
        "full_heap": False, "pause_start": 90.0, "pause_end": 100.0,
        "pause_cycles": 10.0, "heap_frames_in_use": 5, "reserve_frames": 1,
        "wall_s": 0.001,
    }
    data.update(over)
    return Event("gc.end", time, data)


# ----------------------------------------------------------------------
# Bus
# ----------------------------------------------------------------------
def test_emit_without_sinks_constructs_nothing():
    bus = TelemetryBus()
    assert not bus.active
    assert bus.emit("gc.start", 0.0, {}) is None


def test_emit_fans_out_to_all_sinks():
    bus = TelemetryBus()
    a, b = RingBufferSink(), RingBufferSink()
    bus.subscribe(a)
    bus.subscribe(b)
    assert bus.active
    event = bus.emit("phase", 1.0, {"name": "mutator", "wall_s": 0.5})
    assert event is not None
    assert a.events == [event] and b.events == [event]
    bus.unsubscribe(b)
    bus.emit("phase", 2.0, {"name": "total", "wall_s": 1.0})
    assert len(a) == 2 and len(b) == 1


def test_subscribe_rejects_non_sinks():
    with pytest.raises(TypeError):
        TelemetryBus().subscribe(object())


# ----------------------------------------------------------------------
# Events / schemas
# ----------------------------------------------------------------------
def test_event_json_roundtrip():
    event = _gc_end()
    parsed = json.loads(event.to_json())
    assert parsed["kind"] == "gc.end" and parsed["time"] == 100.0
    rebuilt = Event.from_dict(parsed)
    assert rebuilt == event


def test_validate_accepts_event_and_flat_dict():
    event = _gc_end()
    validate_event(event)
    validate_event(json.loads(event.to_json()))
    assert validate_events([event, event]) == 2


def test_validate_rejects_unknown_kind_and_missing_fields():
    with pytest.raises(SchemaError):
        validate_event(Event("gc.teleport", 0.0, {}))
    with pytest.raises(SchemaError):
        validate_event(Event("gc.start", 0.0, {"seq": 1}))  # missing keys


def test_validate_rejects_bool_where_number_declared():
    with pytest.raises(SchemaError):
        validate_event(_gc_end(copied_words=True))


def test_extra_keys_allowed():
    validate_event(_gc_end(custom_annotation="ok"))


def test_pauses_from_events():
    events = [_gc_end(pause_start=10.0, pause_end=15.0),
              Event("phase", 20.0, {"name": "total", "wall_s": 1.0}),
              _gc_end(pause_start=30.0, pause_end=37.0)]
    assert pauses_from_events(events) == [(10.0, 15.0), (30.0, 37.0)]
    flat = [json.loads(e.to_json()) for e in events]
    assert pauses_from_events(flat) == [(10.0, 15.0), (30.0, 37.0)]


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
def test_jsonl_sink_stream_and_load():
    stream = io.StringIO()
    sink = JsonlSink(stream)
    sink.accept(_gc_end())
    sink.accept(_gc_end(time=200.0, id=2))
    sink.close()  # external stream: flushed, not closed
    assert not stream.closed
    assert sink.count == 2
    stream.seek(0)
    lines = load_jsonl(stream)
    assert [l["id"] for l in lines] == [1, 2]
    assert validate_events(lines) == 2


def test_jsonl_sink_owns_path(tmp_path):
    path = tmp_path / "events.jsonl"
    sink = JsonlSink(path)
    sink.accept(_gc_end())
    sink.close()
    assert len(load_jsonl(path)) == 1


def test_ring_buffer_capacity_and_kinds():
    ring = RingBufferSink(capacity=3)
    for i in range(5):
        ring.accept(_gc_end(time=float(i), id=i))
    ring.accept(Event("phase", 9.0, {"name": "total", "wall_s": 1.0}))
    assert ring.accepted == 6
    assert len(ring) == 3  # oldest evicted
    assert [e.data["id"] for e in ring.of_kind("gc.end")] == [3, 4]
    with pytest.raises(ValueError):
        RingBufferSink(capacity=0)


def test_ring_buffer_overflow_counts_oldest_dropped():
    """Overflow is oldest-dropped and explicitly accounted: ``dropped``
    counts evictions, and ``accepted == len(sink) + dropped`` always."""
    ring = RingBufferSink(capacity=2)
    assert ring.dropped == 0
    ring.accept(_gc_end(id=0))
    ring.accept(_gc_end(id=1))
    assert ring.dropped == 0  # full, but nothing evicted yet
    for i in range(2, 7):
        ring.accept(_gc_end(id=i))
    assert ring.dropped == 5
    assert ring.accepted == 7
    assert ring.accepted == len(ring) + ring.dropped
    # Survivors are the most recent events, in arrival order.
    assert [e.data["id"] for e in ring.events] == [5, 6]


def test_ring_buffer_unbounded_never_drops():
    ring = RingBufferSink()  # capacity=None: keep everything
    for i in range(100):
        ring.accept(_gc_end(id=i))
    assert ring.dropped == 0
    assert len(ring) == ring.accepted == 100
    # clear() empties the buffer but keeps the lifetime accounting.
    ring.clear()
    assert len(ring) == 0 and ring.accepted == 100 and ring.dropped == 0


def test_counter_sink_folds_stream():
    sink = CounterSink()
    sink.accept(_gc_end(pause_cycles=10.0))
    sink.accept(_gc_end(id=2, pause_cycles=30.0, full_heap=True))
    sink.accept(Event("remset.batch", 110.0, {
        "inserts": 7, "drained_slots": 5, "dropped_entries": 1, "entries": 2,
    }))
    sink.accept(Event("alloc.region", 120.0, {
        "frame": 9, "space": "belt0", "heap_frames_in_use": 6,
    }))
    snap = sink.snapshot()
    assert snap["gc_collections_total"] == 2
    assert snap["gc_full_heap_total"] == 1
    assert snap["gc_pause_cycles_total"] == 40.0
    assert snap["gc_max_pause_cycles"] == 30.0
    assert snap["remset_inserts_total"] == 7
    assert snap["alloc_region_rollovers_total"] == 1
    assert snap["heap_frames_in_use"] == 6.0
    rendered = sink.render()
    assert "gc_collections_total 2.0" in rendered


def test_counter_sink_render_is_sorted_and_round_trips():
    """``render`` pins name-sorted ordering, and ``parse`` inverts it
    exactly — the compare tooling depends on both."""
    sink = CounterSink()
    sink.accept(_gc_end(pause_cycles=10.0))
    sink.accept(Event("alloc.region", 120.0, {
        "frame": 9, "space": "belt0", "heap_frames_in_use": 6,
    }))
    rendered = sink.render()
    names = [line.rsplit(" ", 1)[0] for line in rendered.splitlines()]
    assert names == sorted(names)
    assert CounterSink.parse(rendered) == sink.snapshot()


def test_counter_sink_parse_rejects_garbage():
    with pytest.raises(ValueError):
        CounterSink.parse("no_value_here")


# ----------------------------------------------------------------------
# Streaming loader
# ----------------------------------------------------------------------
def _jsonl_with_noise():
    good = _gc_end()
    unknown = Event("gc.teleport", 1.0, {"x": 1})
    return "\n".join([
        good.to_json(),
        "{not json at all",
        unknown.to_json(),
        "",  # blank lines are not an error
        _gc_end(time=200.0, id=2).to_json(),
    ]) + "\n"


def test_iter_jsonl_is_lazy_and_matches_load(tmp_path):
    from repro.obs import iter_jsonl

    path = tmp_path / "events.jsonl"
    sink = JsonlSink(path)
    sink.accept(_gc_end())
    sink.accept(_gc_end(time=200.0, id=2))
    sink.close()
    iterator = iter_jsonl(path)
    assert iter(iterator) is iterator  # a generator, not a list
    assert list(iterator) == load_jsonl(path)


def test_iter_jsonl_validate_skips_and_counts(tmp_path):
    from repro.obs import JsonlLoadReport, iter_jsonl

    path = tmp_path / "noisy.jsonl"
    path.write_text(_jsonl_with_noise())
    report = JsonlLoadReport()
    events = list(iter_jsonl(path, validate=True, report=report))
    assert [e["id"] for e in events] == [1, 2]
    assert report.corrupt == 1 and report.invalid == 1
    assert report.skipped == 2
    assert report.events == 2
    assert report.lines == 4  # blank lines are not counted


def test_iter_jsonl_without_validate_raises_on_corruption(tmp_path):
    path = tmp_path / "noisy.jsonl"
    path.write_text(_jsonl_with_noise())
    with pytest.raises(ValueError):
        list(load_jsonl(path))


def test_load_jsonl_validate_kwarg(tmp_path):
    path = tmp_path / "noisy.jsonl"
    path.write_text(_jsonl_with_noise())
    events = load_jsonl(path, validate=True)
    assert [e["id"] for e in events] == [1, 2]
