"""End-to-end telemetry through the consolidated ``run()`` API.

Two acceptance criteria from the telemetry-bus work live here:

* telemetry-**off** runs through ``run()`` reproduce the golden
  fixed-seed counters bit-identically for all six benchmark specs — the
  new API and the event layer change nothing when nobody subscribes;
* a subscribed JSONL sink yields schema-valid events whose totals
  (bytes copied, pauses) reconcile exactly with the returned RunStats.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.mmu import (
    mmu_curve,
    mmu_curve_from_events,
    utilisation_from_counters,
)
from repro.analysis.pauses import summarise, summarise_events
from repro.bench.spec import BENCHMARK_NAMES
from repro.harness.runner import RunOptions, run
from repro.obs import load_jsonl, pauses_from_events, validate_events

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "data" / "golden_counters.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

#: RunStats field -> golden key (the stats-visible subset of the fixture).
_STATS_KEYS = {
    "completed": "completed",
    "allocations": "allocations",
    "allocated_bytes": "allocated_bytes",
    "copied_bytes": "copied_bytes",
    "collections": "collections",
    "full_heap_collections": "full_heap_collections",
    "peak_remset_entries": "peak_remset_entries",
    "total_cycles": "total_cycles",
    "gc_cycles": "gc_cycles",
    "mutator_cycles": "mutator_cycles",
}


@pytest.mark.parametrize("bench_name", BENCHMARK_NAMES)
def test_run_api_telemetry_off_matches_golden(bench_name):
    """All six specs through ``run()`` with no telemetry: bit-identical."""
    cell = f"{bench_name}/25.25.100"
    golden = GOLDEN["cells"][cell]
    report = run(
        bench_name, "25.25.100", golden["heap_bytes"],
        options=RunOptions(scale=GOLDEN["scale"], seed=GOLDEN["seed"]),
    )
    stats = report.stats
    got = {key: getattr(stats, field) for key, field in
           ((g, s) for s, g in _STATS_KEYS.items())}
    expected = {key: golden[key] for key in got}
    assert got == expected


@pytest.mark.parametrize("bench_name", BENCHMARK_NAMES)
def test_trace_jsonl_schema_and_reconciliation(bench_name, tmp_path):
    """Every spec emits per-collection, per-phase and occupancy events
    whose totals reconcile with the returned RunStats."""
    out = tmp_path / f"{bench_name}.jsonl"
    report = run(
        bench_name, "25.25.100", 64 * 1024,
        options=RunOptions(scale=0.1, trace=str(out)),
    )
    stats = report.stats
    events = load_jsonl(out)
    assert len(events) == report.trace_events_written
    assert validate_events(events) == len(events)

    kinds = {e["kind"] for e in events}
    assert {"run.start", "gc.start", "gc.end", "remset.batch",
            "heap.snapshot", "phase", "run.end"} <= kinds

    ends = [e for e in events if e["kind"] == "gc.end"]
    assert len(ends) == stats.collections
    assert sum(e["copied_bytes"] for e in ends) == stats.copied_bytes
    assert sum(e["pause_cycles"] for e in ends) == pytest.approx(stats.gc_cycles)

    (run_end,) = [e for e in events if e["kind"] == "run.end"]
    assert run_end["completed"] is True
    counters = run_end["counters"]
    assert counters["gc_collections_total"] == stats.collections
    assert counters["gc_copied_bytes_total"] == stats.copied_bytes
    assert counters["alloc_bytes_total"] == stats.allocated_bytes
    assert counters["run_total_cycles"] == stats.total_cycles

    batches = [e for e in events if e["kind"] == "remset.batch"]
    assert sum(b["inserts"] for b in batches) == counters["remset_inserts_total"]

    phases = [e for e in events if e["kind"] == "phase"]
    assert {p["name"] for p in phases} == {
        "mutator", "barrier", "collect", "verify", "total"
    }


def test_analysis_from_trace_matches_analysis_from_stats(tmp_path):
    """Figures regenerated from ``--trace`` JSONL match the in-process
    RunStats-based analysis."""
    out = tmp_path / "trace.jsonl"
    report = run(
        "javac", "25.25.100", 64 * 1024,
        options=RunOptions(scale=0.1, trace=str(out)),
    )
    stats = report.stats
    events = load_jsonl(out)
    assert pauses_from_events(events) == stats.pause_intervals()
    assert summarise_events(events) == summarise(stats.pause_intervals())
    windows = [stats.total_cycles * f for f in (0.01, 0.1, 0.5)]
    assert mmu_curve_from_events(events, stats.total_cycles, windows) == (
        mmu_curve(stats.pause_intervals(), stats.total_cycles, windows)
    )
    (run_end,) = [e for e in events if e["kind"] == "run.end"]
    util = utilisation_from_counters(run_end["counters"])
    assert util == pytest.approx(1.0 - stats.gc_fraction)


def test_trace_written_even_when_run_fails(tmp_path):
    out = tmp_path / "oom.jsonl"
    report = run(
        "jess", "gctk:Appel", 2 * 1024,
        options=RunOptions(scale=0.2, trace=str(out)),
    )
    assert not report.completed
    events = load_jsonl(out)
    validate_events(events)
    (run_end,) = [e for e in events if e["kind"] == "run.end"]
    assert run_end["completed"] is False
    assert run_end["failure"]
