"""Cost-accounting tests: the VM must charge exactly what was counted.

The figures are only as trustworthy as the accounting: these tests pin
the flush mechanics (deltas, not totals), the pause charging, and the
locality multiplier's application point.
"""

import pytest

from repro.runtime import VM, MutatorContext
from repro.sim.cost import CostModel
from repro.sim.locality import LocalityModel


def make_vm(**kwargs):
    kwargs.setdefault("boot_ballast_slots", 0)
    kwargs.setdefault("collector", "25.25.100")
    vm = VM(heap_bytes=24 * 1024, **kwargs)
    vm.define_type("node", nrefs=2, nscalars=1)
    return vm, MutatorContext(vm)


def test_mutator_charges_match_hand_computation():
    cm = CostModel()
    vm, mu = make_vm(cost_model=cm)
    node = vm.types.by_name("node")
    h = mu.alloc(node)  # 1 alloc + 1 barriered type store
    mu.write(h, 0, h)  # 1 ref write (field_write + barrier fast)
    mu.read_addr(h, 0)  # 1 read
    mu.work(10)
    stats = vm.finish()
    expected = (
        cm.alloc_object
        + cm.alloc_word * node.size_words()
        + cm.barrier_fast * 2  # type store + ref store
        + cm.field_read * 1
        + cm.field_write * 1
        + cm.work_unit * 10
    )
    assert stats.mutator_cycles == pytest.approx(expected)
    assert stats.gc_cycles == 0
    assert stats.total_cycles == pytest.approx(expected)


def test_flush_uses_deltas_not_totals():
    """finish() after a collection must not double-charge the work that
    was already flushed at the pause."""
    vm, mu = make_vm()
    node = vm.types.by_name("node")
    for _ in range(600):
        mu.alloc(node).drop()
    assert vm.plan.collections, "need at least one pause"
    first = vm.finish()
    again = vm.finish()  # idempotent: nothing left to flush
    assert again.mutator_cycles == pytest.approx(first.mutator_cycles)
    assert again.total_cycles == pytest.approx(first.total_cycles)


def test_pause_cost_matches_collection_work():
    cm = CostModel()
    vm, mu = make_vm(cost_model=cm)
    node = vm.types.by_name("node")
    keep = [mu.alloc(node) for _ in range(10)]
    result = vm.plan.collect("forced")
    pause = vm.clock.pauses[-1]
    expected = cm.collection_cost(
        copied_objects=result.copied_objects,
        copied_words=result.copied_words,
        scanned_ref_slots=result.scanned_ref_slots,
        root_slots=result.root_slots,
        remset_slots=result.remset_slots,
        freed_frames=result.freed_frames,
        boot_slots_scanned=result.boot_slots_scanned,
    )
    assert pause.duration == pytest.approx(expected)


def test_locality_multiplier_scales_mutator_only():
    heavy = LocalityModel(cache_words=1, cache_sensitivity=1.0)

    def run(locality):
        vm, mu = make_vm(locality=locality)
        node = vm.types.by_name("node")
        for _ in range(800):
            mu.alloc(node).drop()
        return vm.finish()

    base = run(LocalityModel())
    slow = run(heavy)
    assert slow.mutator_cycles > base.mutator_cycles * 2
    assert slow.gc_cycles == pytest.approx(base.gc_cycles)
    assert slow.collections == base.collections  # behaviour unchanged


def test_work_units_charged_through_cost_model():
    cm = CostModel()
    vm, mu = make_vm(cost_model=cm)
    mu.work(7.5)
    stats = vm.finish()
    assert stats.mutator_cycles == pytest.approx(7.5 * cm.work_unit)


def test_peak_footprint_tracked():
    vm, mu = make_vm()
    node = vm.types.by_name("node")
    keep = [mu.alloc(node) for _ in range(40)]
    stats = vm.finish()
    assert stats.peak_footprint_bytes >= 40 * node.size_bytes()
    assert stats.peak_footprint_bytes <= vm.heap_bytes


def test_post_gc_occupancy_recorded_per_collection():
    vm, mu = make_vm()
    node = vm.types.by_name("node")
    for _ in range(1000):
        mu.alloc(node).drop()
    stats = vm.finish()
    assert len(stats.post_gc_occupancy_bytes) == stats.collections
    assert all(v >= 0 for v in stats.post_gc_occupancy_bytes)
