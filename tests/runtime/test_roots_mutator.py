"""Unit tests for handles, the root table and the mutator context."""

import pytest

from repro.errors import HeapCorruption
from repro.runtime import VM, Handle, MutatorContext, RootTable


@pytest.fixture
def env():
    vm = VM(heap_bytes=64 * 256, collector="25.25.100")
    vm.define_type("node", nrefs=2, nscalars=2)
    vm.define_ref_array("arr")
    return vm, MutatorContext(vm)


# ----------------------------------------------------------------------
# RootTable / Handle
# ----------------------------------------------------------------------
def test_roottable_acquire_release():
    table = RootTable()
    a = table.acquire(0x100)
    b = table.acquire(0x200)
    assert a.addr == 0x100 and b.addr == 0x200
    assert table.live_slots == 2
    a.drop()
    assert table.live_slots == 1
    c = table.acquire(0x300)  # reuses the freed slot
    assert c.addr == 0x300
    assert len(table.slots) == 2


def test_dropped_handle_is_unusable():
    table = RootTable()
    h = table.acquire(0x100)
    h.drop()
    with pytest.raises(HeapCorruption):
        _ = h.addr
    with pytest.raises(HeapCorruption):
        h.addr = 0x200


def test_handle_truthiness():
    table = RootTable()
    assert not table.acquire(0)
    assert table.acquire(0x40)


def test_gc_updates_handles(env):
    vm, mu = env
    node = vm.types.by_name("node")
    h = mu.alloc(node)
    mu.write_int(h, 0, 42)
    before = h.addr
    vm.collect()
    assert h.addr != before  # the object moved
    assert mu.read_int(h, 0) == 42


# ----------------------------------------------------------------------
# MutatorContext
# ----------------------------------------------------------------------
def test_alloc_returns_rooted_handle(env):
    vm, mu = env
    h = mu.alloc_named("node")
    assert not h.is_null
    assert vm.model.type_of(h.addr).name == "node"


def test_write_read_roundtrip(env):
    vm, mu = env
    a = mu.alloc_named("node")
    b = mu.alloc_named("node")
    mu.write(a, 1, b)
    got = mu.read(a, 1)
    assert got.addr == b.addr
    mu.write(a, 1, None)
    assert mu.read(a, 1).is_null


def test_null_handle_operations_raise(env):
    vm, mu = env
    null = mu.handle()
    other = mu.alloc_named("node")
    with pytest.raises(HeapCorruption):
        mu.write(null, 0, other)
    with pytest.raises(HeapCorruption):
        mu.read(null, 0)


def test_array_length(env):
    vm, mu = env
    arr = mu.alloc_named("arr", length=7)
    assert mu.length_of(arr) == 7


def test_copy_handle_independent(env):
    vm, mu = env
    a = mu.alloc_named("node")
    c = mu.copy_handle(a)
    assert c.addr == a.addr
    c.drop()
    assert a.addr != 0  # dropping the copy leaves the original


def test_out_of_range_slot_raises(env):
    vm, mu = env
    a = mu.alloc_named("node")
    with pytest.raises(HeapCorruption):
        mu.write(a, 5, a)
    with pytest.raises(HeapCorruption):
        mu.read_int(a, 9)


def test_work_charges_clock(env):
    vm, mu = env
    mu.work(10)
    stats = vm.finish()
    assert stats.mutator_cycles > 0


# ----------------------------------------------------------------------
# VM facade
# ----------------------------------------------------------------------
def test_vm_rounds_heap_to_frames():
    vm = VM(heap_bytes=1000, collector="BSS")  # 256-byte frames
    assert vm.heap_bytes == 768


def test_vm_collector_name():
    assert VM(heap_bytes=8192, collector="25.25.100").collector_name == "25.25.100"
    assert VM(heap_bytes=8192, collector="gctk:SS").collector_name == "gctk:SS"


def test_vm_rejects_bad_collector():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        VM(heap_bytes=8192, collector=12345)


def test_finish_reports_counts(env):
    vm, mu = env
    node = vm.types.by_name("node")
    for _ in range(50):
        mu.alloc(node).drop()
    stats = vm.finish()
    assert stats.allocations == 50
    assert stats.allocated_bytes == 50 * node.size_bytes()
    assert stats.total_cycles > 0
    assert stats.completed


def test_pause_timeline_recorded(env):
    vm, mu = env
    node = vm.types.by_name("node")
    for _ in range(2000):
        mu.alloc(node).drop()
    stats = vm.finish()
    assert stats.collections > 0
    assert len(stats.pauses) == stats.collections
    # pauses are disjoint and ordered
    for earlier, later in zip(stats.pauses, stats.pauses[1:]):
        assert earlier.end <= later.start
    # mutator progressed between pauses
    assert stats.mutator_cycles > 0
    assert stats.gc_cycles == pytest.approx(
        sum(p.duration for p in stats.pauses)
    )
