"""Batch mutator APIs ≡ their scalar loops, on every tier (DESIGN §13).

``VM.write_ref_batch`` and ``VM.alloc_batch`` are *defined* as the scalar
sequences in their docstrings; the numpy tier vectorises them.  Twin-VM
tests drive the identical workload through the batch API on one VM and
the scalar loop on another and require every observable — addresses,
heap contents, memory-access counters, barrier splits, remset totals —
to match bit for bit.
"""

import pytest

from repro import VM, MutatorContext
from repro.kernels import available

TIERS = ("python", "numpy", "cffi")


def _require(tier: str) -> None:
    status = available().get(tier, "unknown tier")
    if not status.startswith("ok"):
        pytest.skip(f"{tier} tier unavailable: {status}")


def _snapshot(vm: VM) -> dict:
    barrier = vm.plan.barrier.stats
    remsets = vm.plan.remsets
    return {
        "loads": vm.space.load_count,
        "stores": vm.space.store_count,
        "fast": barrier.fast_path,
        "slow": barrier.slow_path,
        "null": barrier.null_stores,
        "inserts": remsets.inserts,
        "duplicates": remsets.duplicate_inserts,
        "allocations": vm.plan.allocations,
        "collections": len(vm.plan.collections),
    }


def _build(tier):
    vm = VM(heap_bytes=128 * 1024, collector="25.25.100", tier=tier)
    node = vm.define_type("node", nrefs=2, nscalars=1)
    mu = MutatorContext(vm)
    return vm, node, mu


@pytest.mark.parametrize("tier", TIERS)
def test_write_ref_batch_matches_scalar_loop(tier):
    _require(tier)
    outcomes = []
    for use_batch in (False, True):
        vm, node, mu = _build(tier)
        handles = [mu.alloc(node) for _ in range(64)]
        vm.collect("age")  # survivors now live in an older frame
        young = [mu.alloc(node) for _ in range(64)]
        objs = [h.addr for h in handles] + [h.addr for h in young]
        idxs = [i % 2 for i in range(64)] + [1] * 64
        # Old->young edges (slow path), young->old (fast), and nulls.
        vals = [y.addr for y in young] + [0] * 32 + [h.addr for h in handles[:32]]
        if use_batch:
            vm.write_ref_batch(objs, idxs, vals)
        else:
            for o, i, v in zip(objs, idxs, vals):
                vm.write_ref(o, i, v)
        outcomes.append((_snapshot(vm),
                         [vm.read_ref(o, i) for o, i in zip(objs, idxs)]))
    assert outcomes[0] == outcomes[1]


@pytest.mark.parametrize("tier", TIERS)
def test_alloc_batch_matches_scalar_loop(tier):
    _require(tier)
    outcomes = []
    for use_batch in (False, True):
        vm, node, mu = _build(tier)
        # Enough objects to cross frame boundaries and trigger at least
        # one nursery collection mid-batch.
        if use_batch:
            addrs = vm.alloc_batch(node, count=3000)
        else:
            addrs = [vm.alloc(node) for _ in range(3000)]
        outcomes.append((_snapshot(vm), addrs[-5:]))
    assert outcomes[0] == outcomes[1]
    assert outcomes[0][0]["collections"] > 0


@pytest.mark.parametrize("tier", TIERS)
def test_write_ref_batch_accepts_plain_lists(tier):
    """The batch API takes any int sequence; list inputs on an
    accelerated tier must not diverge from array inputs."""
    _require(tier)
    vm, node, mu = _build(tier)
    a, b = mu.alloc(node), mu.alloc(node)
    vm.write_ref_batch([a.addr, b.addr], [0, 1], [b.addr, a.addr])
    assert vm.read_ref(a.addr, 0) == b.addr
    assert vm.read_ref(b.addr, 1) == a.addr
