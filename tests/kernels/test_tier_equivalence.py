"""Cross-tier equivalence for the substrate-kernel tier (DESIGN §13).

The kernel tiers (``python`` reference, ``numpy`` batch kernels, ``cffi``
compiled trace engine) are pure mechanism: a fixed-seed run must produce
**bit-identical** statistics on every tier.  These tests replay a slice
of the golden-counter suite under each tier explicitly (the plain suite
runs whatever ``auto`` resolves to), and run the sanitizer plus the
fault-injection matrix on the fastest available tier — the checkers and
the fault seams all live outside the kernels, so sabotage must stay
exactly as detectable when the compiled paths are doing the copying.

Tiers whose backend is absent in the environment are skipped with the
probe's reason, never failed: missing accelerators degrade, they don't
break (see ``repro.kernels.available``).
"""

import pytest

from repro import VM, MutatorContext
from repro.harness.runner import RunOptions, run
from repro.kernels import TIER_ORDER, available, resolve
from repro.sanitizer import FaultSpec, SanitizerViolation, arm_faults, attach_sanitizer

from ..core.test_counter_equivalence import GOLDEN, replay

TIERS = ("python", "numpy", "cffi")

#: A slice of the golden grid spanning every benchmark and all four
#: collector families (Beltway generational, MOS, Appel-style, gctk).
CELLS = (
    "jess/25.25.100",
    "javac/Appel",
    "db/25.25.MOS",
    "jack/gctk:Appel",
    "raytrace/25.25.100",
    "pseudojbb/gctk:Appel",
)


def _require(tier: str) -> None:
    status = available().get(tier, "unknown tier")
    if not status.startswith("ok"):
        pytest.skip(f"{tier} tier unavailable: {status}")


def fastest_tier() -> str:
    for tier in TIER_ORDER:
        if available()[tier].startswith("ok"):
            return tier
    return "python"


@pytest.mark.parametrize("tier", TIERS)
@pytest.mark.parametrize("cell", CELLS)
def test_golden_counters_bit_identical_on_every_tier(cell, tier):
    _require(tier)
    benchmark, collector = cell.split("/", 1)
    golden = GOLDEN["cells"][cell]
    got = replay(benchmark, collector, golden["heap_bytes"],
                 GOLDEN["scale"], GOLDEN["seed"], tier=tier)
    expected = {k: v for k, v in golden.items() if k != "heap_bytes"}
    assert got == expected


def test_requested_tier_is_what_runs():
    """The parametrisation above is only meaningful if an explicit tier
    request resolves to that tier (not silently to something else)."""
    for tier in TIERS:
        if available()[tier].startswith("ok"):
            assert resolve(tier).name == tier


def test_unavailable_backend_degrades_not_raises(monkeypatch):
    """A requested-but-absent backend drops down TIER_ORDER silently."""
    import repro.kernels as kernels

    monkeypatch.setitem(kernels._availability_cache, "cffi",
                        "unavailable: simulated")
    monkeypatch.setitem(kernels._availability_cache, "numpy",
                        "unavailable: simulated")
    resolved = resolve("cffi")
    assert resolved.name == "python"
    assert resolved.requested == "cffi"
    # A VM built against the degraded tier still works end to end.
    vm = VM(heap_bytes=64 * 1024, collector="25.25.100", tier="cffi")
    mu = MutatorContext(vm)
    node = vm.define_type("node", nrefs=1, nscalars=1)
    a, b = mu.alloc(node), mu.alloc(node)
    mu.write(a, 0, b)
    vm.collect("smoke")


# ----------------------------------------------------------------------
# Sanitizer on the fastest tier: full checking attaches cleanly and the
# fault matrix stays exactly as detectable with compiled kernels live.
# ----------------------------------------------------------------------
def test_sanitizer_clean_run_on_fastest_tier(monkeypatch):
    tier = fastest_tier()
    monkeypatch.setenv("REPRO_SUBSTRATE_TIER", tier)
    report = run("jess", "25.25.100", 96 * 1024,
                 options=RunOptions(scale=0.4, seed=13, sanitize=True))
    assert report.completed
    assert report.sanitizer.ok
    assert report.sanitizer.collections_checked > 0


#: (collector, fault kind, check that must flag it first) — the Beltway
#: and gctk rows of the sanitizer meta-test, re-run with kernels enabled.
FAULT_MATRIX = [
    ("25.25.100", "barrier.drop-entry", "remset-completeness"),
    ("25.25.100", "remset.corrupt-slot", "remset-completeness"),
    ("25.25.100", "copy.skip-forward", "forwarding"),
    ("25.25.100", "scalar.corrupt", "diff.scalar"),
    ("25.25.100", "order.stale-stamp", "order-stamp"),
    ("25.25.100", "reserve.shrink", "copy-reserve"),
    ("gctk:Appel", "barrier.drop-entry", "remset-completeness"),
    ("gctk:Appel", "copy.skip-forward", "forwarding"),
    ("gctk:Appel", "scalar.corrupt", "diff.scalar"),
]


@pytest.mark.parametrize("collector,kind,check", FAULT_MATRIX)
def test_fault_detected_on_fastest_tier(collector, kind, check):
    """Same workload as tests/sanitizer/test_fault_matrix.py, tier forced
    to the fastest backend: every fault must fire and be flagged by the
    same checker as on the reference tier."""
    vm = VM(heap_bytes=96 * 1024, collector=collector, tier=fastest_tier())
    injector = arm_faults(vm, [FaultSpec(kind, nth=1)])
    sanitizer = attach_sanitizer(vm)
    mu = MutatorContext(vm)
    node = vm.define_type("node", nrefs=1, nscalars=1)
    try:
        anchor = mu.alloc(node)
        mu.write_int(anchor, 0, 7)
        vm.collect("promote-anchor")
        young = mu.alloc(node)
        mu.write(anchor, 0, young)
        vm.collect("check")
        sanitizer.check_now()
    except SanitizerViolation:
        pass
    report = sanitizer.report
    assert injector.fired, f"{kind} never fired on {collector}"
    assert not report.ok, f"{kind} fired on {collector} but went undetected"
    assert report.violations[0].check == check
