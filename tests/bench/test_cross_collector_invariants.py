"""Differential invariants across collectors on identical workloads.

The synthetic mutator's behaviour is a pure function of (spec, seed): it
must allocate byte-for-byte the same stream no matter which collector is
underneath, and every collector must deliver the same *reachable* heap.
These are the strongest cheap checks that collector differences never
leak into mutator semantics.
"""

import pytest

from repro.bench.engine import AllocSite, SyntheticMutator, WorkloadSpec
from repro.bench.lifetime import LifetimeClass
from repro.runtime import VM

COLLECTORS = [
    "BSS",
    "Appel",
    "Fixed.25",
    "25.25",
    "25.25.100",
    "25.25.MOS",
    "BOF.25",
    "BOFM.25",
    "gctk:SS",
    "gctk:Appel",
    "gctk:Fixed.25",
]


def spec():
    return WorkloadSpec(
        name="diff",
        total_alloc_bytes=10 * 1024,
        sites=[
            AllocSite(weight=0.6, type_name="small", lifetime="immediate"),
            AllocSite(weight=0.3, type_name="node", lifetime="short", link_prob=0.25),
            AllocSite(weight=0.1, type_name="refarr", lifetime="short", length=(1, 5)),
        ],
        lifetimes={
            "immediate": LifetimeClass("immediate", 0, 400),
            "short": LifetimeClass("short", 200, 1800),
        },
        mutation_rate=0.15,
        read_rate=0.2,
    )


@pytest.fixture(scope="module")
def runs():
    results = {}
    for collector in COLLECTORS:
        vm = VM(28 * 1024, collector=collector, debug_verify=False)
        engine = SyntheticMutator(vm, spec(), seed=99)
        stats = engine.run()
        report = vm.plan.verify()
        results[collector] = (stats, report, engine)
    return results


def test_all_collectors_complete(runs):
    for collector, (stats, _, _) in runs.items():
        assert stats.completed, collector


def test_allocation_stream_identical(runs):
    """The mutator is collector-independent: same allocations, bytes,
    field operations under every collector."""
    baseline = runs["BSS"][0]
    for collector, (stats, _, _) in runs.items():
        assert stats.allocations == baseline.allocations, collector
        assert stats.allocated_bytes == baseline.allocated_bytes, collector


def test_barrier_fast_path_identical(runs):
    """Every reference store executes the barrier exactly once, so the
    fast-path count is collector-independent too."""
    baseline = runs["BSS"][0]
    for collector, (stats, _, _) in runs.items():
        assert stats.barrier_fast == baseline.barrier_fast, collector


def test_reachable_heap_identical(runs):
    """Same live objects and words reachable at the end under every
    collector (the boot image contributes equally everywhere)."""
    baseline = runs["BSS"][1]
    for collector, (_, report, _) in runs.items():
        assert report.objects == baseline.objects, collector
        assert report.words == baseline.words, collector


def test_survivor_population_identical(runs):
    baseline = runs["BSS"][2]
    for collector, (_, _, engine) in runs.items():
        assert engine.live_objects == baseline.live_objects, collector


def test_collectors_actually_differ_in_gc_behaviour(runs):
    """Sanity: the invariants above are not vacuous — the collectors do
    behave differently where they are allowed to."""
    counts = {stats.collections for stats, _, _ in runs.values()}
    copied = {stats.copied_bytes for stats, _, _ in runs.values()}
    assert len(counts) >= 2
    assert len(copied) >= 3
