"""Empirical demographic validation of the synthetic workloads.

DESIGN.md's substitution argument says the synthetic mutators exhibit the
collector-relevant behaviours of the SPEC programs.  These tests measure
them (repro.bench.validate) and assert the paper's five insights (§2.1)
actually hold in the workloads the figures are built from.
"""

import pytest

from repro.bench.validate import measure_benchmark

SCALE = 0.4


@pytest.fixture(scope="module")
def demographics():
    return {
        name: measure_benchmark(name, scale=SCALE)
        for name in ("jess", "raytrace", "db", "javac", "pseudojbb")
    }


def test_weak_generational_hypothesis(demographics):
    """Most bytes die young: infant mortality is high for the churn-heavy
    benchmarks; javac is the designed outlier (its AST/symbol structures
    are middle-aged — the reason its nursery collections pay off least,
    visible in the paper's Table 1 GC counts)."""
    for name, demo in demographics.items():
        floor = 0.2 if name in ("javac", "pseudojbb") else 0.35
        assert demo.infant_mortality > floor, (name, demo.summary())
    assert demographics["jess"].infant_mortality > 0.5
    assert demographics["raytrace"].infant_mortality > 0.6
    # the middle-aged-heavy benchmarks sit below the churn-heavy ones
    assert (
        demographics["pseudojbb"].infant_mortality
        < demographics["jess"].infant_mortality
    )


def test_time_to_die(demographics):
    """FIFO aging on belt 1 gives objects time to die: survival out of
    the mature belt is lower than survival out of the nursery for the
    churn-heavy benchmarks (their promoted objects are middle-aged, not
    immortal)."""
    jess = demographics["jess"]
    if jess.mature_collected_bytes:
        assert jess.mature_survival < jess.nursery_survival + 0.15


def test_db_is_read_heavy(demographics):
    db = demographics["db"]
    others = [d for n, d in demographics.items() if n != "db"]
    assert db.read_write_ratio > max(o.read_write_ratio for o in others) * 0.9
    assert db.read_write_ratio > 1.0


def test_pseudojbb_middle_aged_population(demographics):
    """pseudojbb's orders survive the nursery (promoted) far more than
    jess's facts do — the middle-aged population that motivates
    older-first designs."""
    assert (
        demographics["pseudojbb"].nursery_survival
        > demographics["jess"].nursery_survival
    )


def test_summary_text(demographics):
    text = demographics["jess"].summary()
    assert "infant mortality" in text
    assert "reads/writes" in text


def test_collections_observed(demographics):
    for name, demo in demographics.items():
        assert demo.collections > 0, name
        assert demo.allocations > 0
        assert demo.allocated_bytes > 0
