"""Tests for the synthetic-mutator engine and lifetime machinery."""

import random

import pytest

from repro.bench.engine import AllocSite, SyntheticMutator, WorkloadSpec
from repro.bench.lifetime import DeathSchedule, LifetimeClass
from repro.runtime import VM
from repro.runtime.roots import RootTable


# ----------------------------------------------------------------------
# LifetimeClass / DeathSchedule
# ----------------------------------------------------------------------
def test_lifetime_sampling_in_range():
    rng = random.Random(1)
    cls = LifetimeClass("short", 100, 500)
    for _ in range(50):
        value = cls.sample(rng)
        assert 100 <= value <= 500


def test_immortal_class():
    cls = LifetimeClass("forever")
    assert cls.immortal
    assert cls.sample(random.Random(1)) is None


def test_degenerate_range():
    cls = LifetimeClass("exact", 300, 300)
    assert cls.sample(random.Random(1)) == 300


def test_death_schedule_reaps_in_order():
    table = RootTable()
    schedule = DeathSchedule()
    handles = [table.acquire(100 + i) for i in range(5)]
    for i, handle in enumerate(handles):
        schedule.schedule((i + 1) * 10, handle)
    assert schedule.reap(25) == 2
    assert table.live_slots == 3
    assert schedule.reap(25) == 0  # idempotent
    assert schedule.reap(1000) == 3
    assert table.live_slots == 0
    assert schedule.reaped == 5


def test_death_schedule_drop_all():
    table = RootTable()
    schedule = DeathSchedule()
    for i in range(4):
        schedule.schedule(1000, table.acquire(4 + 4 * i))
    assert schedule.drop_all() == 4
    assert len(schedule) == 0


def test_death_schedule_drop_fraction():
    table = RootTable()
    schedule = DeathSchedule()
    for i in range(200):
        schedule.schedule(1000 + i, table.acquire(4 + 4 * i))
    rng = random.Random(7)
    dropped = schedule.drop_fraction(rng, 0.5)
    assert 60 <= dropped <= 140
    assert len(schedule) == 200 - dropped
    # survivors still reap correctly later
    assert schedule.reap(5000) == 200 - dropped


def test_peek_handles():
    table = RootTable()
    schedule = DeathSchedule()
    assert schedule.peek_handles(random.Random(1), 3) == []
    schedule.schedule(10, table.acquire(0x40))
    picks = schedule.peek_handles(random.Random(1), 3)
    assert len(picks) == 3


# ----------------------------------------------------------------------
# SyntheticMutator
# ----------------------------------------------------------------------
def tiny_spec(**overrides):
    base = dict(
        name="tiny",
        total_alloc_bytes=12 * 1024,
        sites=[
            AllocSite(weight=0.7, type_name="small", lifetime="immediate"),
            AllocSite(weight=0.2, type_name="node", lifetime="short", link_prob=0.3),
            AllocSite(weight=0.1, type_name="refarr", lifetime="short", length=(1, 6)),
        ],
        lifetimes={
            "immediate": LifetimeClass("immediate", 0, 512),
            "short": LifetimeClass("short", 256, 2048),
            "medium": LifetimeClass("medium", 1024, 4096),
        },
        mutation_rate=0.2,
        read_rate=0.3,
    )
    base.update(overrides)
    return WorkloadSpec(**base)


def run_spec(spec, heap_kb=24, collector="25.25.100", seed=13):
    vm = VM(heap_kb * 1024, collector=collector, debug_verify=True)
    engine = SyntheticMutator(vm, spec, seed=seed)
    stats = engine.run()
    return vm, engine, stats


def test_engine_reaches_allocation_target():
    spec = tiny_spec()
    vm, engine, stats = run_spec(spec)
    assert engine.allocated_bytes >= spec.total_alloc_bytes
    assert stats.completed
    assert stats.allocations > 100


def test_engine_deterministic():
    a = run_spec(tiny_spec())[2]
    b = run_spec(tiny_spec())[2]
    assert a.total_cycles == b.total_cycles
    assert a.collections == b.collections
    assert a.barrier_slow == b.barrier_slow


def test_engine_seed_changes_run():
    a = run_spec(tiny_spec(), seed=1)[2]
    b = run_spec(tiny_spec(), seed=2)[2]
    assert a.total_cycles != b.total_cycles


def test_engine_scaled_spec_is_shorter():
    full = tiny_spec()
    short = full.scaled(0.5)
    assert short.total_alloc_bytes == full.total_alloc_bytes // 2
    a = run_spec(full)[2]
    b = run_spec(short)[2]
    assert b.allocated_bytes < a.allocated_bytes


def test_engine_phases_drop_population():
    spec = tiny_spec(
        sites=[AllocSite(weight=1.0, type_name="node", lifetime="medium")],
        phase_bytes=3 * 1024,
        phase_drop_fraction=0.9,
    )
    vm, engine, stats = run_spec(spec)
    assert engine.phases_completed >= 3


def test_engine_cycles_built():
    spec = tiny_spec(cycle_every_bytes=2 * 1024, cycle_size=4)
    vm, engine, stats = run_spec(spec)
    assert engine.cycles_built >= 4
    vm.plan.verify()


def test_engine_immortal_setup():
    def setup(engine):
        table = engine.alloc_immortal("refarr", length=8)
        for i in range(8):
            engine.mu.write(table, i, engine.alloc_immortal("node"))

    spec = tiny_spec(setup=setup)
    vm, engine, stats = run_spec(spec)
    assert len(engine.immortals) >= 9
    report = vm.plan.verify()
    assert report.objects >= 9


def test_engine_heap_stays_verifiable_across_collectors():
    for collector in ("Appel", "BOF.25", "BOFM.25", "gctk:Appel", "gctk:SS"):
        vm, engine, stats = run_spec(tiny_spec(), collector=collector)
        assert stats.completed, collector
        vm.plan.verify()
