"""Tests for the six SPEC-like benchmark definitions."""

import pytest

from repro.bench.spec import (
    BENCHMARK_NAMES,
    KB,
    all_specs,
    benchmark_spec,
    canonical_name,
    get_spec,
)
from repro.errors import ConfigError
from repro.harness.runner import RunOptions, run


def _run_stats(name, collector, heap_bytes, scale=1.0):
    return run(
        name, collector, heap_bytes, options=RunOptions(scale=scale)
    ).stats


def test_registry_names_and_aliases():
    assert canonical_name("jess") == "jess"
    assert canonical_name("_202_jess") == "jess"
    assert canonical_name("JBB") == "pseudojbb"
    with pytest.raises(ConfigError):
        canonical_name("doom")


def test_all_specs_complete_metadata():
    for spec in all_specs():
        assert spec.total_alloc_bytes > 50 * KB
        assert spec.sites, spec.name
        assert abs(sum(s.weight for s in spec.sites) - 1.0) < 1e-6, spec.name
        for site in spec.sites:
            assert site.lifetime in spec.lifetimes, spec.name
        assert spec.paper is not None
        assert spec.paper.min_heap_bytes > 0


def test_spec_scaling():
    full = benchmark_spec("jess")
    half = benchmark_spec("jess", scale=0.5)
    assert half.total_alloc_bytes == full.total_alloc_bytes // 2
    assert half.paper.min_heap_bytes == full.paper.min_heap_bytes


def test_table1_totals_match_paper():
    """Total allocation is the paper's number (scaled 1024x)."""
    expected = {
        "jess": 301,
        "raytrace": 127,
        "db": 102,
        "javac": 266,
        "jack": 320,
        "pseudojbb": 381,
    }
    for name, kb in expected.items():
        assert benchmark_spec(name).total_alloc_bytes == kb * KB


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_benchmark_runs_to_completion(name):
    """Each benchmark completes at ~2.5x its paper minimum, shortened 5x."""
    spec = benchmark_spec(name)
    heap = int(2.5 * spec.paper.min_heap_bytes)
    stats = _run_stats(name, "gctk:Appel", heap, scale=0.2)
    assert stats.completed, stats.failure
    assert stats.allocated_bytes >= 0.2 * spec.total_alloc_bytes * 0.9
    # the unshortened run at the same heap must need collections
    full = _run_stats(name, "gctk:Appel", heap)
    assert full.completed and full.collections > 0


@pytest.mark.parametrize("name", BENCHMARK_NAMES)
def test_benchmark_deterministic(name):
    spec = benchmark_spec(name)
    heap = int(2.5 * spec.paper.min_heap_bytes)
    a = _run_stats(name, "25.25.100", heap, scale=0.1)
    b = _run_stats(name, "25.25.100", heap, scale=0.1)
    assert a.total_cycles == b.total_cycles
    assert a.collections == b.collections


def test_javac_builds_cycles():
    from repro.bench.engine import SyntheticMutator
    from repro.runtime import VM

    spec = benchmark_spec("javac", scale=0.2)
    vm = VM(2 * spec.paper.min_heap_bytes, collector="25.25.100")
    engine = SyntheticMutator(vm, spec, seed=13)
    engine.run()
    assert engine.cycles_built > 5


def test_db_setup_builds_immortal_database():
    from repro.bench.engine import SyntheticMutator
    from repro.runtime import VM

    spec = benchmark_spec("db", scale=0.05)
    vm = VM(2 * spec.paper.min_heap_bytes, collector="gctk:Appel")
    engine = SyntheticMutator(vm, spec, seed=13)
    engine.run()
    # 4 chunks * 24 records * (record + payload) + directory
    assert len(engine.immortals) >= 4 * 24 * 2


def test_pseudojbb_has_middle_aged_orders():
    spec = benchmark_spec("pseudojbb")
    order = spec.lifetimes["order"]
    nursery_increment = spec.paper.min_heap_bytes // 5  # 25.25.100 increment
    assert order.lo_bytes > nursery_increment // 4
    assert order.hi_bytes < spec.paper.min_heap_bytes


def test_locality_models_differ():
    db = benchmark_spec("db").locality
    jess = benchmark_spec("jess").locality
    jbb = benchmark_spec("pseudojbb").locality
    assert db.cache_sensitivity > jess.cache_sensitivity
    assert jbb.memory_words > 0  # only pseudojbb pages
    assert jess.memory_words == 0


def test_get_spec_shim_warns_and_delegates():
    """The deprecated name still works, loudly, and returns the same spec."""
    import pytest

    with pytest.warns(DeprecationWarning, match="repro.specs.load"):
        spec = get_spec("jess", scale=0.5)
    assert spec.name == benchmark_spec("jess", scale=0.5).name
    assert spec.total_alloc_bytes == benchmark_spec("jess", 0.5).total_alloc_bytes
