"""Validation tests for WorkloadSpec construction errors."""

import pytest

from repro.bench.engine import AllocSite, WorkloadSpec
from repro.bench.lifetime import LifetimeClass
from repro.errors import ConfigError

LIFETIMES = {"short": LifetimeClass("short", 0, 100)}
SITE = AllocSite(weight=1.0, type_name="small", lifetime="short")


def make(**overrides):
    base = dict(
        name="x",
        total_alloc_bytes=1024,
        sites=[SITE],
        lifetimes=dict(LIFETIMES),
    )
    base.update(overrides)
    return WorkloadSpec(**base)


def test_valid_spec_constructs():
    spec = make()
    assert spec.name == "x"


def test_zero_allocation_rejected():
    with pytest.raises(ConfigError):
        make(total_alloc_bytes=0)


def test_no_sites_rejected():
    with pytest.raises(ConfigError):
        make(sites=[])


def test_negative_weight_rejected():
    bad = AllocSite(weight=-1.0, type_name="small", lifetime="short")
    with pytest.raises(ConfigError):
        make(sites=[SITE, bad])


def test_zero_total_weight_rejected():
    zero = AllocSite(weight=0.0, type_name="small", lifetime="short")
    with pytest.raises(ConfigError):
        make(sites=[zero])


def test_unknown_lifetime_rejected():
    bad = AllocSite(weight=1.0, type_name="small", lifetime="banana")
    with pytest.raises(ConfigError):
        make(sites=[bad])


def test_cycle_size_validated():
    with pytest.raises(ConfigError):
        make(cycle_every_bytes=512, cycle_size=1)


def test_cycle_lifetime_validated():
    with pytest.raises(ConfigError):
        make(cycle_every_bytes=512, cycle_size=4, cycle_lifetime="nope")


def test_phase_fraction_validated():
    with pytest.raises(ConfigError):
        make(phase_bytes=512, phase_drop_fraction=1.5)


def test_scaled_preserves_phase_count():
    spec = make(
        total_alloc_bytes=4000, phase_bytes=1000, phase_drop_fraction=0.5
    )
    half = spec.scaled(0.5)
    assert half.total_alloc_bytes == 2000
    assert half.phase_bytes == 500
    assert half.total_alloc_bytes // half.phase_bytes == 4
