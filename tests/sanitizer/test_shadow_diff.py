"""Shadow graph + differential checker unit coverage.

These tests corrupt the real heap *underneath* the sanitizer's mutator
hooks (through the VM's compiled store closures, exactly the bypass a
collector bug would take) and assert the differential walk localises the
damage to the right check, address and frame.
"""

import pytest

from repro import VM, MutatorContext
from repro.errors import ConfigError
from repro.sanitizer import attach_sanitizer
from repro.sanitizer.heapcheck import RawHeapReader


def _vm(collector="25.25.100"):
    vm = VM(heap_bytes=32 * 1024, collector=collector)
    sanitizer = attach_sanitizer(vm, halt_on_violation=False)
    mu = MutatorContext(vm)
    node = vm.define_type("node", nrefs=2, nscalars=1)
    return vm, sanitizer, mu, node


def test_attach_after_mutator_context_is_refused():
    vm = VM(heap_bytes=32 * 1024)
    MutatorContext(vm)
    with pytest.raises(ConfigError, match="before any mutator context"):
        attach_sanitizer(vm)


def test_clean_walk_compares_every_live_object():
    vm, sanitizer, mu, node = _vm()
    head = mu.alloc(node)
    for i in range(10):
        child = mu.alloc(node)
        mu.write(child, 0, head)
        mu.write_int(child, 0, i)
        head = child
    report = sanitizer.check_now()
    assert report.ok
    assert sanitizer.report.objects_compared >= 11
    assert sanitizer.report.edges_compared >= 10


def test_scalar_corruption_is_localised():
    vm, sanitizer, mu, node = _vm()
    h = mu.alloc(node)
    mu.write_int(h, 0, 5)
    vm._write_scalar(h.addr, 0, 99)  # bypasses the shadow hook
    report = sanitizer.check_now()
    scalar = [v for v in report.violations if v.check == "diff.scalar"]
    assert scalar, report.summary()
    assert scalar[0].addr == h.addr
    assert scalar[0].frame == sanitizer.reader.frame_index(h.addr)
    assert "99" in scalar[0].message and "5" in scalar[0].message


def test_cleared_edge_is_detected():
    vm, sanitizer, mu, node = _vm()
    h = mu.alloc(node)
    child = mu.alloc(node)
    mu.write(h, 0, child)
    vm._write_ref_field(h.addr, 0, 0)  # heap loses the edge, shadow keeps it
    report = sanitizer.check_now()
    assert any(v.check == "diff.edge" and v.addr == h.addr
               for v in report.violations), report.summary()


def test_planted_edge_is_detected():
    vm, sanitizer, mu, node = _vm()
    h = mu.alloc(node)
    child = mu.alloc(node)
    # The heap gains an edge the mutator never wrote.
    vm._write_ref_field(h.addr, 1, child.addr)
    report = sanitizer.check_now()
    assert any(v.check == "diff.edge" and v.addr == h.addr
               for v in report.violations), report.summary()


def test_violations_survive_collections_in_non_halting_mode():
    """halt_on_violation=False keeps running and keeps accumulating."""
    vm, sanitizer, mu, node = _vm()
    h = mu.alloc(node)
    mu.write_int(h, 0, 5)
    vm._write_scalar(h.addr, 0, 99)
    vm.collect("observe")  # gc.end boundary records, does not raise
    assert not sanitizer.report.ok
    assert sanitizer.report.collections_checked == 1


def test_raw_heap_reader_views_match_the_mutator():
    vm, sanitizer, mu, node = _vm()
    h = mu.alloc(node)
    child = mu.alloc(node)
    mu.write(h, 0, child)
    mu.write_int(h, 0, 41)
    reader = RawHeapReader(vm.space, vm.plan.model)
    assert reader.check_object(h.addr) is None
    view = reader.view(h.addr)
    assert view.desc.name == "node"
    assert list(view.refs) == [child.addr, 0]
    assert list(view.scalars) == [41]
    assert view.frame_index == reader.frame_index(h.addr)
    assert not reader.is_boot(h.addr)
    visited, error = reader.walk([h.addr, child.addr])
    assert error is None
    assert set(visited) == {h.addr, child.addr}


def test_reader_flags_structural_garbage():
    vm, sanitizer, mu, node = _vm()
    h = mu.alloc(node)
    reader = RawHeapReader(vm.space, vm.plan.model)
    assert reader.check_object(h.addr + 1) is not None  # misaligned
    assert reader.check_object(0x7FFF_FFF0) is not None  # unmapped
