"""``beltway-bench check``: the sanitizer's CLI entry point."""

import pytest

from repro.harness.cli import main


def test_check_clean_run_exits_zero(capsys):
    code = main([
        "check", "--benchmark", "jess", "--scale", "0.4", "--heap-kb", "96",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "[OK] jess/25.25.100" in out
    assert "collections checked" in out


def test_check_armed_fault_exits_nonzero(capsys):
    code = main([
        "check", "--benchmark", "jess", "--scale", "0.4", "--heap-kb", "96",
        "--fault", "copy.skip-forward@2",
    ])
    out = capsys.readouterr().out
    assert code == 1
    assert "[FAIL] jess/25.25.100" in out
    assert "forwarding" in out


def test_check_rejects_bad_fault_kind():
    with pytest.raises(SystemExit):
        main(["check", "--fault", "not-a-kind@x"])


def test_check_default_covers_all_benchmarks(monkeypatch):
    """Without --benchmark the subcommand sweeps all six specs."""
    from repro.bench.spec import BENCHMARK_NAMES
    from repro.harness import cli

    seen = []

    class _Report:
        completed = True

        class sanitizer:
            ok = True
            collections_checked = 1
            objects_compared = 1
            violations = ()

        class stats:
            failure = ""

    def fake_run(name, collector, heap_bytes, options=None):
        seen.append((name, collector, options.sanitize))
        return _Report()

    monkeypatch.setattr(cli, "run", fake_run)
    assert cli.main(["check"]) == 0
    assert [name for name, _, _ in seen] == list(BENCHMARK_NAMES)
    assert all(sanitize for _, _, sanitize in seen)
