"""Fault-free sanitized runs: zero violations, zero observable footprint.

Two acceptance gates live here:

* every benchmark spec runs to completion under full checking with an
  empty violation list (the collectors actually satisfy the invariants
  the sanitizer enforces);
* a *sanitized* run's RunStats reproduce the golden fixed-seed counters
  bit-identically — the shadow graph and checkers read the heap without
  touching a single accounting counter, so checking a run does not
  change what it measures.
"""

import json
from pathlib import Path

import pytest

from repro.bench.spec import BENCHMARK_NAMES
from repro.harness.runner import RunOptions, run

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "data" / "golden_counters.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

_STATS_KEYS = (
    "completed",
    "allocations",
    "allocated_bytes",
    "copied_bytes",
    "collections",
    "full_heap_collections",
    "peak_remset_entries",
    "total_cycles",
    "gc_cycles",
    "mutator_cycles",
)


def _sanitized_golden_run(bench_name, collector):
    cell = GOLDEN["cells"][f"{bench_name}/{collector}"]
    report = run(
        bench_name, collector, cell["heap_bytes"],
        options=RunOptions(
            scale=GOLDEN["scale"], seed=GOLDEN["seed"], sanitize=True
        ),
    )
    return report, cell


@pytest.mark.parametrize("bench_name", BENCHMARK_NAMES)
def test_all_specs_clean_under_full_checking(bench_name):
    report, cell = _sanitized_golden_run(bench_name, "25.25.100")
    sanitizer = report.sanitizer
    assert report.completed
    assert sanitizer.ok
    assert sanitizer.violations == []
    assert sanitizer.faults_injected == []
    # Every collection hit a gc.end boundary check.
    assert sanitizer.collections_checked == report.stats.collections
    assert sanitizer.objects_compared > 0
    assert sanitizer.remset_edges_checked >= 0
    # Counter-free checking: the sanitized run's stats are the golden ones.
    got = {key: getattr(report.stats, key) for key in _STATS_KEYS}
    assert got == {key: cell[key] for key in _STATS_KEYS}


@pytest.mark.parametrize("bench_name", ("jess", "javac"))
def test_gctk_baseline_clean_under_full_checking(bench_name):
    report, cell = _sanitized_golden_run(bench_name, "gctk:Appel")
    assert report.completed
    assert report.sanitizer.ok
    assert report.sanitizer.collections_checked == report.stats.collections
    got = {key: getattr(report.stats, key) for key in _STATS_KEYS}
    assert got == {key: cell[key] for key in _STATS_KEYS}


def test_report_summary_and_serialisation():
    report, _ = _sanitized_golden_run("jess", "25.25.100")
    sanitizer = report.sanitizer
    data = sanitizer.to_dict()
    assert data["violations"] == []
    assert data["collections_checked"] == sanitizer.collections_checked
    assert data["objects_compared"] == sanitizer.objects_compared
    text = sanitizer.summary()
    assert text.startswith("sanitizer OK")
    assert str(sanitizer.collections_checked) in text
