"""Attach → detach returns a VM to the untouched-code path.

Both observers (the telemetry tracer and the sanitizer) advertise
``detach()``; after it runs, the VM's counters must advance
bit-identically to a VM that was never observed, and no instance-level
wrapper may remain behind.
"""

from repro import VM, MutatorContext, attach_tracer
from repro.sanitizer import attach_sanitizer


def _build(collector="25.25.100"):
    vm = VM(heap_bytes=32 * 1024, collector=collector)
    node = vm.define_type("node", nrefs=1, nscalars=1)
    return vm, node


def _segment(vm, mu, node, start, count):
    """A deterministic slice of mutator work (allocs, stores, scalars)."""
    head = mu.alloc(node)
    for i in range(start, start + count):
        child = mu.alloc(node)
        mu.write(child, 0, head)
        mu.write_int(child, 0, i)
        head = child
    vm.collect("segment-end")
    return head


def test_tracer_detach_counters_bit_identical():
    """Plain run vs attach-mid-run + detach-mid-run: identical RunStats."""
    vm_a, node_a = _build()
    mu_a = MutatorContext(vm_a)
    for start in (0, 100, 200):
        _segment(vm_a, mu_a, node_a, start, 80)
    stats_a = vm_a.finish()

    vm_b, node_b = _build()
    mu_b = MutatorContext(vm_b)
    _segment(vm_b, mu_b, node_b, 0, 80)
    tracer = attach_tracer(vm_b, snapshot_every=1)
    _segment(vm_b, mu_b, node_b, 100, 80)
    tracer.detach()
    _segment(vm_b, mu_b, node_b, 200, 80)
    stats_b = vm_b.finish()

    assert tracer.collections()  # it really observed the middle segment
    assert stats_a == stats_b
    # No wrapper left on the plan's entry points or the space.
    assert "collect" not in vars(vm_b.plan)
    assert "acquire_frame" not in vars(vm_b.space)
    assert vm_b._on_collection in vm_b.plan.collection_listeners


def test_tracer_detach_is_idempotent_and_keeps_events():
    vm, node = _build()
    mu = MutatorContext(vm)
    tracer = attach_tracer(vm)
    _segment(vm, mu, node, 0, 60)
    events_before = list(tracer.events)
    tracer.detach()
    tracer.detach()  # second call must be a no-op
    _segment(vm, mu, node, 100, 60)
    assert tracer.events == events_before


def test_sanitizer_detach_counters_bit_identical():
    """Sanitized first half + detach + clean second half matches a run
    that was never attached (same mutator-context structure)."""
    vm_a, node_a = _build()
    mu_a1 = MutatorContext(vm_a)
    _segment(vm_a, mu_a1, node_a, 0, 80)
    mu_a2 = MutatorContext(vm_a)
    _segment(vm_a, mu_a2, node_a, 100, 80)
    stats_a = vm_a.finish()

    vm_b, node_b = _build()
    sanitizer = attach_sanitizer(vm_b)
    mu_b1 = MutatorContext(vm_b)
    _segment(vm_b, mu_b1, node_b, 0, 80)
    sanitizer.check_now()
    sanitizer.detach()
    mu_b2 = MutatorContext(vm_b)
    _segment(vm_b, mu_b2, node_b, 100, 80)
    stats_b = vm_b.finish()

    assert sanitizer.report.ok
    assert sanitizer.report.collections_checked > 0
    assert stats_a == stats_b


def test_sanitizer_detach_removes_every_wrapper():
    vm, node = _build()
    sanitizer = attach_sanitizer(vm)
    mu = MutatorContext(vm)
    _segment(vm, mu, node, 0, 40)

    assert "alloc" in vars(vm)
    assert "acquire" in vars(mu.table)
    sanitizer.detach()
    sanitizer.detach()  # idempotent
    assert "alloc" not in vars(vm)
    assert "write_ref" not in vars(vm)
    assert "write_int" not in vars(vm)
    assert "acquire" not in vars(mu.table)
    assert "release" not in vars(mu.table)
    assert vm.mutator_observer is None
    # New mutator contexts are built on the clean path.
    mu2 = MutatorContext(vm)
    assert "acquire" not in vars(mu2.table)
