"""The heap verifier moved into the sanitizer; the old import keeps working."""

import importlib
import sys
import warnings


def test_heap_verify_shim_warns_and_reexports():
    sys.modules.pop("repro.heap.verify", None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        shim = importlib.import_module("repro.heap.verify")
    assert any(
        issubclass(w.category, DeprecationWarning)
        and "repro.sanitizer.heapcheck" in str(w.message)
        for w in caught
    )
    from repro.sanitizer.heapcheck import HeapVerifier, VerifyReport

    assert shim.HeapVerifier is HeapVerifier
    assert shim.VerifyReport is VerifyReport


def test_heap_package_reexports_without_warning():
    """``repro.heap`` itself now pulls the verifier from the sanitizer —
    a fresh interpreter importing it must not trip the shim's warning."""
    import os
    import subprocess

    env = dict(os.environ, PYTHONPATH=os.pathsep.join(sys.path))
    code = (
        "import warnings; warnings.simplefilter('error', DeprecationWarning)\n"
        "import repro.heap, repro.sanitizer.heapcheck as hc, sys\n"
        "assert repro.heap.HeapVerifier is hc.HeapVerifier\n"
        "assert 'repro.heap.verify' not in sys.modules\n"
    )
    subprocess.run(
        [sys.executable, "-c", code], check=True, env=env, timeout=60
    )
