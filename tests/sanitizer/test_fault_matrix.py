"""The self-validating meta-test: every registered fault is detected.

Each fault kind is armed on a fixed, fully deterministic workload and
must produce a non-empty :class:`SanitizerReport` whose *first* violation
comes from the check that is supposed to catch that kind of corruption.
If a fault fires and no checker flags it, the sanitizer has a blind spot
and this file fails — which is the point.
"""

import pytest

from repro import VM, MutatorContext
from repro.errors import ConfigError
from repro.harness.runner import RunOptions, run
from repro.sanitizer import (
    FaultSpec,
    SanitizerViolation,
    arm_faults,
    attach_sanitizer,
)
from repro.sanitizer.faults import BELTWAY_ONLY, FAULT_KINDS


def _sabotaged_run(collector, kind, nth=1):
    """Arm one fault, run a tiny hand-built workload, return the report.

    The workload promotes an anchor object out of the youngest frame,
    then stores a young pointer into it (the cross-frame edge every
    remset fault needs), then collects — every fault kind fires and
    every checker boundary is exercised within two collections.
    """
    vm = VM(heap_bytes=96 * 1024, collector=collector)
    injector = arm_faults(vm, [FaultSpec(kind, nth=nth)])
    sanitizer = attach_sanitizer(vm)
    mu = MutatorContext(vm)
    node = vm.define_type("node", nrefs=1, nscalars=1)
    try:
        anchor = mu.alloc(node)
        mu.write_int(anchor, 0, 7)
        vm.collect("promote-anchor")
        young = mu.alloc(node)
        mu.write(anchor, 0, young)
        vm.collect("check")
        sanitizer.check_now()
    except SanitizerViolation:
        pass
    return sanitizer.report, injector


#: (collector, fault kind, check that must flag it first).
MATRIX = [
    ("25.25.100", "barrier.drop-entry", "remset-completeness"),
    ("25.25.100", "remset.corrupt-slot", "remset-completeness"),
    ("25.25.100", "copy.skip-forward", "forwarding"),
    ("25.25.100", "scalar.corrupt", "diff.scalar"),
    ("25.25.100", "order.stale-stamp", "order-stamp"),
    ("25.25.100", "reserve.shrink", "copy-reserve"),
    ("gctk:Appel", "barrier.drop-entry", "remset-completeness"),
    ("gctk:Appel", "remset.corrupt-slot", "remset-completeness"),
    ("gctk:Appel", "copy.skip-forward", "forwarding"),
    ("gctk:Appel", "scalar.corrupt", "diff.scalar"),
]


def test_matrix_covers_every_registered_kind():
    assert {kind for _, kind, _ in MATRIX} == set(FAULT_KINDS)


@pytest.mark.parametrize("collector,kind,check", MATRIX)
def test_fault_is_detected(collector, kind, check):
    report, injector = _sabotaged_run(collector, kind)
    assert injector.fired, f"{kind} never fired on {collector}"
    assert not report.ok, f"{kind} fired on {collector} but went undetected"
    assert report.violations[0].check == check
    # The violation carries actionable detail, not just a flag.
    assert report.violations[0].message


@pytest.mark.parametrize(
    "bench,collector,kind,nth,check",
    [
        ("jess", "25.25.100", "copy.skip-forward", 2, "forwarding"),
        ("jess", "25.25.100", "scalar.corrupt", 3, "diff.scalar"),
        ("jess", "25.25.100", "order.stale-stamp", 1, "order-stamp"),
        ("jess", "25.25.100", "reserve.shrink", 1, "copy-reserve"),
        ("javac", "gctk:Appel", "copy.skip-forward", 2, "forwarding"),
        ("javac", "gctk:Appel", "scalar.corrupt", 2, "diff.scalar"),
    ],
)
def test_fault_detected_through_run_api(bench, collector, kind, nth, check):
    """Faults armed via RunOptions fail the run at the first violation and
    the report lands on the RunReport, naming what was sabotaged."""
    report = run(
        bench, collector, 96 * 1024,
        options=RunOptions(
            scale=0.4, seed=13, sanitize=True,
            faults=(FaultSpec(kind, nth=nth),),
        ),
    )
    assert not report.completed
    assert report.stats.failure.startswith("sanitizer: ")
    sanitizer = report.sanitizer
    assert not sanitizer.ok
    assert sanitizer.violations[0].check == check
    assert sanitizer.faults_injected  # the firing is named in the report
    assert kind in sanitizer.faults_injected[0]


@pytest.mark.parametrize("kind", BELTWAY_ONLY)
def test_beltway_only_faults_refuse_gctk_plans(kind):
    vm = VM(heap_bytes=32 * 1024, collector="gctk:Appel")
    with pytest.raises(ConfigError, match="requires a Beltway plan"):
        arm_faults(vm, [FaultSpec(kind)])


def test_unknown_fault_kind_is_rejected():
    vm = VM(heap_bytes=32 * 1024)
    with pytest.raises(ConfigError):
        arm_faults(vm, [FaultSpec("no.such-fault")])


def test_disarm_restores_the_untouched_path():
    """disarm() removes every instance-level patch it installed."""
    vm = VM(heap_bytes=32 * 1024)
    injector = arm_faults(
        vm, [FaultSpec("barrier.drop-entry"), FaultSpec("reserve.shrink")]
    )
    assert "insert" in vars(vm.plan.remsets)
    injector.disarm()
    assert "insert" not in vars(vm.plan.remsets)
    assert "current_reserve_frames" not in vars(vm.plan)
    assert "collect" not in vars(vm.plan.collector)
