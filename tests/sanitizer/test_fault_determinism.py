"""Fault points are deterministic: same spec, same seed, same report.

Two independent runs armed with the same :class:`FaultSpec` must fire at
the same occurrence, corrupt the same address, and produce violation
reports that serialise identically — that determinism is what makes the
meta-test matrix a test rather than a coin flip.
"""

import pytest

from repro.harness.runner import RunOptions, run
from repro.sanitizer import FaultSpec

from .test_fault_matrix import _sabotaged_run

#: Four kinds, each through a different checker path.
KINDS = (
    "barrier.drop-entry",
    "copy.skip-forward",
    "order.stale-stamp",
    "scalar.corrupt",
)


@pytest.mark.parametrize("kind", KINDS)
def test_same_spec_same_report(kind):
    report_a, injector_a = _sabotaged_run("25.25.100", kind)
    report_b, injector_b = _sabotaged_run("25.25.100", kind)
    assert report_a.violations, f"{kind} produced no violations"
    assert report_a.to_dict() == report_b.to_dict()
    assert injector_a.events == injector_b.events


def test_engine_run_reports_are_identical():
    """The full benchmark engine under a seeded fault is just as
    deterministic: byte-identical serialised reports across two runs."""
    options = RunOptions(
        scale=0.4, seed=13, sanitize=True,
        faults=(FaultSpec("copy.skip-forward", nth=2),),
    )
    report_a = run("jess", "25.25.100", 96 * 1024, options=options)
    report_b = run("jess", "25.25.100", 96 * 1024, options=options)
    assert not report_a.sanitizer.ok
    assert report_a.sanitizer.to_dict() == report_b.sanitizer.to_dict()
    assert report_a.stats.failure == report_b.stats.failure


def test_seed_addressing_resolves_consistently():
    """nth derived from a seed is stable and within the documented range."""
    for seed in range(10):
        spec = FaultSpec("scalar.corrupt", seed=seed)
        nth = spec.resolved_nth()
        assert nth == FaultSpec("scalar.corrupt", seed=seed).resolved_nth()
        assert 1 <= nth <= 7
        assert spec.describe() == f"scalar.corrupt@{nth}"
