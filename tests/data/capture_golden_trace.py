#!/usr/bin/env python3
"""Capture the fixed-seed golden span timeline (ISSUE 10).

Run from the repository root::

    PYTHONPATH=src python tests/data/capture_golden_trace.py [--out PATH]

The golden pins the *canonical projection* of the span model — run + gc
spans (ids, names, nesting, start/end in simulated cycles) for a small
fixed-seed campaign.  The projection is required to be bit-identical

* across the python/numpy/cffi substrate tiers,
* between a cold run (telemetry forwarded live from the worker) and a
  warm replay (spans synthesized from stored ``RunStats``),

so ``tests/obs/test_golden_trace.py`` replays the same campaign against
this file on every tier.  Campaign/phase/request spans are deliberately
outside the projection — see ``Timeline.canonical``.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.grid import execute_jobs
from repro.obs import RingBufferSink, TelemetryBus
from repro.obs.trace import build_timeline

#: The pinned campaign: one Beltway and one gctk collector, both on a
#: heap small enough to force several collections at scale 0.2.
SCALE = 0.2
SEED = 13
JOBS = [
    ("jess", "25.25.100", 24 * 1024, SCALE, SEED),
    ("jess", "gctk:Appel", 24 * 1024, SCALE, SEED),
]


def capture() -> list:
    bus = TelemetryBus()
    ring = bus.subscribe(RingBufferSink(capacity=65536))
    execute_jobs(JOBS, parallel=False, bus=bus)
    return build_timeline(ring.events).canonical()


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent / "golden_trace.json")
    args = parser.parse_args()
    golden = {
        "jobs": [list(job) for job in JOBS],
        "canonical": capture(),
    }
    args.out.write_text(json.dumps(golden, indent=1, sort_keys=True) + "\n")
    spans = len(golden["canonical"])
    print(f"golden trace: {spans} canonical spans -> {args.out}")


if __name__ == "__main__":
    main()
