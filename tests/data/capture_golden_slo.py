#!/usr/bin/env python3
"""Capture fixed-seed SLO frontier goldens.

Run from the repository root::

    PYTHONPATH=src python tests/data/capture_golden_slo.py [--out PATH]

The resulting JSON pins one frontier sweep (ISSUE 9) of the example
kvstore workload against two collector families: every
:class:`FrontierPoint` field including the distilled GC cost, plus the
exact ``slo-frontier`` lines ``beltway-bench slo`` prints (CI greps the
golden for those lines to prove bit-identity end to end, cold and warm).
``tests/slo/test_golden.py`` replays the same sweeps against it.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.slo import sweep_frontier

REPO = Path(__file__).resolve().parents[2]

SPEC = "examples/workloads/kvstore.json"
COLLECTORS = ("25.25.100", "gctk:Appel")
HEAP_BYTES = 192 * 1024
RATES = (600.0, 1200.0, 2400.0)
SCALE = 0.2
SEED = 13


def capture_frontier(collector: str, seed: int = SEED) -> dict:
    frontier = sweep_frontier(
        REPO / SPEC, collector, HEAP_BYTES, RATES, scale=SCALE, seed=seed
    )
    payload = frontier.to_dict()
    payload["spec"] = SPEC
    payload["frontier_lines"] = frontier.point_lines()
    return payload


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent / "golden_slo.json")
    args = parser.parse_args()
    frontiers = {}
    for collector in COLLECTORS:
        frontiers[collector] = capture_frontier(collector, args.seed)
        print("\n".join(frontiers[collector]["frontier_lines"]))
    args.out.write_text(json.dumps(
        {
            "seed": args.seed,
            "spec": SPEC,
            "heap_bytes": HEAP_BYTES,
            "rates": list(RATES),
            "scale": SCALE,
            "frontiers": frontiers,
        },
        indent=1, sort_keys=True) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
