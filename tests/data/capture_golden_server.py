#!/usr/bin/env python3
"""Capture fixed-seed request-latency goldens for the server workloads.

Run from the repository root::

    PYTHONPATH=src python tests/data/capture_golden_server.py [--out PATH]

The resulting JSON pins one example server workload (ISSUE 8) against two
collector families: every RequestStats field (latency percentiles, queue
peak, session/cache counters) plus the core RunStats counters, and the
exact ``latency-cycles`` line ``beltway-bench serve`` prints (CI greps the
golden for that line to prove bit-identity end to end).
``tests/workloads/test_golden.py`` replays the same runs against it.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.harness.runner import RunOptions, run
from repro.specs import load as load_spec

REPO = Path(__file__).resolve().parents[2]

#: (spec file, collector, heap bytes): the Beltway generational default
#: and the independent gctk Appel baseline, on the memcached-style mix.
CELLS = (
    ("examples/workloads/kvstore.json", "25.25.100", 192 * 1024),
    ("examples/workloads/kvstore.json", "gctk:Appel", 192 * 1024),
)
SEED = 13


def capture_cell(spec_path: str, collector: str, heap_bytes: int,
                 seed: int = SEED) -> dict:
    spec = load_spec(REPO / spec_path)
    report = run(REPO / spec_path, collector, heap_bytes,
                 options=RunOptions(seed=seed))
    stats = report.stats
    requests = report.requests
    return {
        "spec": spec_path,
        "heap_bytes": heap_bytes,
        "completed": stats.completed,
        "collections": stats.collections,
        "allocations": stats.allocations,
        "allocated_bytes": stats.allocated_bytes,
        "total_cycles": stats.total_cycles,
        "gc_cycles": stats.gc_cycles,
        "mutator_cycles": stats.mutator_cycles,
        "requests": requests.to_dict(),
        "latency_line": (
            f"latency-cycles {spec.name}/{collector}: "
            f"p50={requests.p50_cycles!r} p99={requests.p99_cycles!r} "
            f"p99.9={requests.p999_cycles!r} max={requests.max_cycles!r}"
        ),
    }


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent / "golden_server.json")
    args = parser.parse_args()
    cells = {}
    for spec_path, collector, heap_bytes in CELLS:
        spec = load_spec(REPO / spec_path)
        key = f"{spec.name}/{collector}"
        cells[key] = capture_cell(spec_path, collector, heap_bytes, args.seed)
        print(cells[key]["latency_line"])
    args.out.write_text(json.dumps(
        {"seed": args.seed, "cells": cells},
        indent=1, sort_keys=True) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
