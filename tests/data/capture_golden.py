#!/usr/bin/env python3
"""Capture fixed-seed counter goldens for the fast-path equivalence tests.

Run from the repository root::

    PYTHONPATH=src python tests/data/capture_golden.py [--scale 0.4] [--out PATH]

The resulting JSON records every statistics counter the fast-path rework
is required to keep bit-identical (ISSUE 2): memory-access counts, barrier
fast/slow/null counts, remset insert/duplicate/peak counts and the
cost-model cycle totals, for each (benchmark, collector) cell.  The
checked-in ``golden_counters.json`` was produced by the pre-rework code;
``tests/core/test_counter_equivalence.py`` replays the same runs against
it.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.bench.engine import SyntheticMutator
from repro.bench.spec import benchmark_spec
from repro.errors import OutOfMemory
from repro.harness.runner import find_min_heap
from repro.runtime.vm import VM

#: The cells the goldens cover: every benchmark spec, against collectors
#: exercising all three reworked loops — the Beltway frame barrier +
#: per-pair remsets (25.25.100), the full-heap Beltway variant (Appel),
#: the MOS policy (pairs()/entries_for_pair consumers) and the gctk
#: boundary barrier + SSB + independent Cheney trace (gctk:Appel).
COLLECTORS = ("25.25.100", "Appel", "25.25.MOS", "gctk:Appel")
BENCHMARKS = ("jess", "raytrace", "db", "javac", "jack", "pseudojbb")


def capture_cell(benchmark: str, collector: str, heap_bytes: int, scale: float,
                 seed: int = 13) -> dict:
    spec = benchmark_spec(benchmark, scale)
    vm = VM(heap_bytes, collector=collector, locality=spec.locality,
            benchmark_name=spec.name)
    engine = SyntheticMutator(vm, spec, seed=seed)
    try:
        stats = engine.run()
    except OutOfMemory as error:
        stats = vm.finish(completed=False, failure=str(error))
    remsets = vm.plan.remsets
    barrier = vm.plan.barrier.stats
    return {
        "heap_bytes": heap_bytes,
        "completed": stats.completed,
        "load_count": vm.space.load_count,
        "store_count": vm.space.store_count,
        "allocations": stats.allocations,
        "allocated_bytes": stats.allocated_bytes,
        "copied_bytes": stats.copied_bytes,
        "collections": stats.collections,
        "full_heap_collections": stats.full_heap_collections,
        "barrier_fast": barrier.fast_path,
        "barrier_slow": barrier.slow_path,
        "barrier_null": barrier.null_stores,
        "remset_inserts": remsets.inserts,
        "remset_duplicates": remsets.duplicate_inserts,
        "remset_entries_final": len(remsets),
        "peak_remset_entries": stats.peak_remset_entries,
        "total_cycles": stats.total_cycles,
        "gc_cycles": stats.gc_cycles,
        "mutator_cycles": stats.mutator_cycles,
    }


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--scale", type=float, default=0.4)
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent / "golden_counters.json")
    args = parser.parse_args()
    cells = {}
    for benchmark in BENCHMARKS:
        heap_bytes = 2 * find_min_heap(benchmark, "gctk:Appel", scale=args.scale,
                                       seed=args.seed)
        for collector in COLLECTORS:
            key = f"{benchmark}/{collector}"
            cells[key] = capture_cell(
                benchmark, collector, heap_bytes, args.scale, args.seed)
            print(key, "ok" if cells[key]["completed"] else "OOM")
    args.out.write_text(json.dumps(
        {"scale": args.scale, "seed": args.seed, "cells": cells},
        indent=1, sort_keys=True) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
