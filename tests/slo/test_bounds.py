"""SLOBound: validation, ms conversion, and run evaluation."""

import pytest

from repro.errors import ConfigError
from repro.sim.clock import PauseRecord
from repro.sim.cost import CYCLES_PER_SECOND
from repro.sim.stats import RunStats
from repro.slo import SLOBound
from repro.workloads.latency import RequestStats


def _stats(p99=1000.0, completed=True, requests=True, pauses=(),
           total=1_000_000.0):
    stats = RunStats(
        benchmark="kv", collector="25.25.100", heap_bytes=96 * 1024,
        completed=completed, total_cycles=total,
        pauses=[PauseRecord(start=s, end=e, reason="test")
                for s, e in pauses],
    )
    if requests:
        stats.requests = RequestStats(
            count=100, offered=100, p50_cycles=p99 / 2, p99_cycles=p99,
            p999_cycles=p99 * 1.2, max_cycles=p99 * 1.3,
        )
    return stats


def test_bound_requires_at_least_one_clause():
    with pytest.raises(ConfigError):
        SLOBound()


def test_bound_rejects_nonsense():
    with pytest.raises(ConfigError):
        SLOBound(p99_cycles=-5.0)
    with pytest.raises(ConfigError):
        SLOBound(min_mmu=1.5)
    with pytest.raises(ConfigError):
        SLOBound(p99_cycles=100.0, mmu_window_fraction=0.0)


def test_from_ms_converts_through_cost_model():
    bound = SLOBound.from_ms(p99=2.0)
    assert bound.p99_cycles == pytest.approx(2e-3 * CYCLES_PER_SECOND)
    assert bound.p50_cycles is None and bound.p999_cycles is None


def test_evaluate_pass_and_fail():
    bound = SLOBound(p99_cycles=1500.0)
    ok, reasons = bound.evaluate(_stats(p99=1000.0))
    assert ok and reasons == []
    ok, reasons = bound.evaluate(_stats(p99=2000.0))
    assert not ok and "p99=" in reasons[0]


def test_failed_run_violates_everything():
    ok, reasons = SLOBound(p99_cycles=1e12).evaluate(
        _stats(completed=False)
    )
    assert not ok and "run failed" in reasons[0]


def test_missing_requests_violates_latency_bounds():
    ok, reasons = SLOBound(p99_cycles=1e12).evaluate(
        _stats(requests=False)
    )
    assert not ok and "no request statistics" in reasons[0]


def test_mmu_clause():
    # One pause of 20% of the window at 1% of a 1e6-cycle run.
    stats = _stats(pauses=[(1000.0, 3000.0)])
    strict = SLOBound(min_mmu=0.9, mmu_window_fraction=0.01)
    ok, reasons = strict.evaluate(stats)
    assert not ok and "mmu=" in reasons[0]
    loose = SLOBound(min_mmu=0.5, mmu_window_fraction=0.01)
    ok, _ = loose.evaluate(stats)
    assert ok
    # The pause-free run has unit utilisation.
    assert strict.mmu_of(_stats()) == 1.0


def test_describe_names_every_clause():
    text = SLOBound(p99_cycles=100.0, min_mmu=0.5).describe()
    assert "p99<=" in text and "mmu@" in text
