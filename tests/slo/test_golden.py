"""Golden SLO frontier: fixed-seed sweeps pinned bit for bit.

``tests/data/golden_slo.json`` was captured by
``tests/data/capture_golden_slo.py``; these tests replay the identical
sweeps — kvstore x two collector families x a three-rate ladder, with
the no-GC distillation — and compare every FrontierPoint field exactly,
cold, warm (store replay executes zero cells) and on every available
substrate tier.  The pinned ``frontier_lines`` are the same lines
``beltway-bench slo`` prints, so the CI grep and these asserts witness
the same bytes.
"""

import json
from pathlib import Path

import pytest

from repro.grid.store import ResultStore
from repro.kernels import TIER_ENV, available
from repro.slo import sweep_frontier

REPO = Path(__file__).resolve().parents[2]
GOLDEN = json.loads((REPO / "tests" / "data" / "golden_slo.json").read_text())


def replay(collector, **kwargs):
    return sweep_frontier(
        REPO / GOLDEN["spec"],
        collector,
        GOLDEN["heap_bytes"],
        GOLDEN["rates"],
        scale=GOLDEN["scale"],
        seed=GOLDEN["seed"],
        **kwargs,
    )


def assert_matches_golden(frontier, collector):
    golden = dict(GOLDEN["frontiers"][collector])
    golden_lines = golden.pop("frontier_lines")
    golden.pop("spec")
    assert frontier.to_dict() == golden
    assert frontier.point_lines() == golden_lines


@pytest.mark.parametrize("collector", sorted(GOLDEN["frontiers"]))
def test_frontier_golden_bit_identical(collector):
    assert_matches_golden(replay(collector), collector)


@pytest.mark.parametrize("collector", sorted(GOLDEN["frontiers"]))
def test_frontier_warm_replay_executes_nothing(collector, tmp_path):
    store = ResultStore(tmp_path / "grid-store")
    cold = replay(collector, store=store)
    assert cold.executed > 0
    assert_matches_golden(cold, collector)
    warm = replay(collector, store=store)
    assert warm.executed == 0, "warm frontier replay re-executed cells"
    assert warm.cached == cold.executed + cold.cached
    assert_matches_golden(warm, collector)
    store.close()


@pytest.mark.parametrize("tier", ("python", "numpy", "cffi"))
def test_frontier_golden_on_every_tier(tier, monkeypatch):
    """Frontiers are substrate-independent: every available kernel tier
    reproduces the golden points (distilled fields included) bit for
    bit."""
    status = available().get(tier, "unknown tier")
    if not status.startswith("ok"):
        pytest.skip(f"{tier} tier unavailable: {status}")
    monkeypatch.setenv(TIER_ENV, tier)
    collector = sorted(GOLDEN["frontiers"])[0]
    assert_matches_golden(replay(collector, parallel=False), collector)


def test_distillation_is_present_and_clean():
    """The golden's no-GC references never collected, so every point's
    distilled cost is trustworthy (`clean`), and a point with zero
    collections shows zero overhead by construction."""
    for golden in GOLDEN["frontiers"].values():
        for point in golden["points"]:
            distilled = point["distilled"]
            assert distilled["baseline_collections"] == 0
            if point["collections"] == 0:
                assert distilled["overhead_pct"] == 0.0
                assert distilled["p99_inflation"] == 1.0
            else:
                assert distilled["overhead_pct"] > 0.0
