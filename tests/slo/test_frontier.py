"""Frontier sweeps and the distilled-cost arithmetic (unit level)."""

import pytest

from repro.errors import ConfigError
from repro.sim.stats import RunStats
from repro.slo import Frontier, FrontierPoint, SLOBound, sweep_frontier
from repro.slo.distill import baseline_heap_bytes, distill
from repro.workloads.latency import RequestStats

from tests.slo.test_search import spec_for, synthetic_runner


def _stats(mean=100.0, p99=500.0, completed=True, collections=0,
           requests=True, heap=1 << 20):
    stats = RunStats(
        benchmark="kv", collector="25.25.100", heap_bytes=heap,
        completed=completed, total_cycles=1e6, gc_cycles=2e4,
        collections=collections,
    )
    if requests:
        stats.requests = RequestStats(
            count=50, offered=50, mean_cycles=mean,
            p50_cycles=mean, p90_cycles=p99 * 0.8, p99_cycles=p99,
            p999_cycles=p99 * 1.1, max_cycles=p99 * 1.2,
        )
    return stats


# ----------------------------------------------------------------------
# distill
# ----------------------------------------------------------------------
def test_distill_arithmetic():
    cost = distill(
        _stats(mean=150.0, p99=1000.0, collections=3),
        _stats(mean=100.0, p99=500.0),
    )
    assert cost.overhead_pct == pytest.approx(50.0)
    assert cost.p99_inflation == pytest.approx(2.0)
    assert cost.gc_fraction == pytest.approx(0.02)
    assert cost.clean
    assert cost.baseline_collections == 0


def test_distill_contaminated_reference_flagged():
    cost = distill(_stats(), _stats(collections=2))
    assert not cost.clean


def test_distill_undefined_cases():
    assert distill(_stats(), None) is None
    assert distill(_stats(), _stats(completed=False)) is None
    assert distill(_stats(requests=False), _stats()) is None
    assert distill(_stats(), _stats(requests=False)) is None


def test_baseline_heap_is_frame_aligned_and_generous():
    spec = spec_for()
    heap = baseline_heap_bytes(spec)
    assert heap % 256 == 0
    assert heap >= 16 * spec.total_alloc_bytes


# ----------------------------------------------------------------------
# sweep_frontier
# ----------------------------------------------------------------------
def test_sweep_validates_inputs():
    with pytest.raises(ConfigError):
        sweep_frontier("jess", "25.25.100", 96 * 1024, [100.0])
    with pytest.raises(ConfigError):
        sweep_frontier(spec_for(), "25.25.100", 96 * 1024, [])
    with pytest.raises(ConfigError):
        sweep_frontier(spec_for(), "25.25.100", 96 * 1024, [0.0])


def test_sweep_sorts_and_dedupes_the_ladder():
    frontier = sweep_frontier(
        spec_for(), "fast", 96 * 1024, [800.0, 400, 800],
        parallel=False, cell_runner=synthetic_runner,
    )
    assert [p.rate_rps for p in frontier.points] == [400.0, 800.0]


def test_sweep_without_distillation():
    frontier = sweep_frontier(
        spec_for(), "fast", 96 * 1024, [400.0], distill=False,
        parallel=False, cell_runner=synthetic_runner,
    )
    point = frontier.points[0]
    assert point.distilled is None
    assert "overhead_pct=None" in frontier.point_lines()[0]
    assert "distilled" not in point.to_dict()


def test_point_events_are_schema_valid():
    from repro.obs.bus import TelemetryBus
    from repro.obs.events import validate_event

    class Sink:
        def __init__(self):
            self.events = []

        def accept(self, event):
            self.events.append(event)

    sink = Sink()
    bus = TelemetryBus()
    bus.subscribe(sink)
    frontier = sweep_frontier(
        spec_for(), "fast", 96 * 1024, [400.0, 800.0],
        parallel=False, cell_runner=synthetic_runner, bus=bus,
    )
    points = [e for e in sink.events if e.kind == "slo.point"]
    assert len(points) == len(frontier.points)
    for event in points:
        validate_event(event)
        assert "overhead_pct" in event.data  # distilled enrichment


# ----------------------------------------------------------------------
# Frontier.knee / FrontierPoint.meets
# ----------------------------------------------------------------------
def _point(rate, p99, mmu=1.0, completed=True):
    return FrontierPoint(
        rate_rps=rate, completed=completed, requests=10, offered=10,
        p50_cycles=p99 / 2, p90_cycles=p99 * 0.9, p99_cycles=p99,
        p999_cycles=p99, max_cycles=p99, mean_cycles=p99 / 2,
        queue_peak=0, paused_requests=0, collections=0, gc_fraction=0.0,
        mmu=mmu,
    )


def test_knee_picks_the_highest_sustainable_rate():
    frontier = Frontier(
        benchmark="kv", collector="c", heap_bytes=1, scale=1.0, seed=13,
        mmu_window_fraction=0.01,
        points=[
            _point(400, 100.0),
            _point(800, 200.0),
            _point(1600, 900.0),
            _point(3200, 950.0, completed=False),
        ],
    )
    slo = SLOBound(p99_cycles=500.0)
    assert frontier.knee(slo) == 800
    assert frontier.knee(SLOBound(p99_cycles=50.0)) is None
    # A failed point never meets the SLO, whatever its numbers say.
    assert not frontier.points[-1].meets(SLOBound(p99_cycles=1e9))
    # The MMU clause reads the point's stored mmu.
    low_mmu = Frontier(
        benchmark="kv", collector="c", heap_bytes=1, scale=1.0, seed=13,
        mmu_window_fraction=0.01, points=[_point(400, 100.0, mmu=0.2)],
    )
    assert low_mmu.knee(SLOBound(min_mmu=0.5)) is None


# ----------------------------------------------------------------------
# Cross-process campaign telemetry (ISSUE 10)
# ----------------------------------------------------------------------
def test_multiprocess_sweep_merges_worker_tagged_timeline():
    """A pooled frontier sweep relays every worker's telemetry back to
    the coordinator bus: one merged timeline, gc/run spans tagged with
    at least two distinct worker pids."""
    from repro.obs import RingBufferSink, TelemetryBus
    from repro.obs.trace import build_timeline, to_perfetto, validate_perfetto

    bus = TelemetryBus()
    ring = bus.subscribe(RingBufferSink(capacity=65536))
    frontier = sweep_frontier(
        spec_for(), "25.25.100", 40 * 1024, [4000.0, 8000.0, 16000.0],
        distill=False, bus=bus, max_workers=2, force_pool=True,
    )
    assert len(frontier.points) == 3
    timeline = build_timeline(ring.events)
    runs = timeline.of_cat("run")
    assert len(runs) == 3
    workers = {s.attrs.get("worker") for s in runs}
    assert len(workers) >= 2 and all(w > 0 for w in workers)
    gc_workers = {s.attrs.get("worker") for s in timeline.of_cat("gc")}
    assert gc_workers and gc_workers <= workers
    # The merged timeline exports cleanly despite pool-order interleaving.
    assert validate_perfetto(to_perfetto(timeline)) == len(timeline.spans)
