"""Max-sustainable-rate search: knee identity with a linear walk, probe
budget, lockstep batching, and the unsaturated case.

The search runs against a synthetic cell runner (the grid executor's test
hook): request p99 is a deterministic monotone function of the offered
rate with a per-collector knee, so the true knee on any lattice is known
in closed form and an exhaustive linear walk is cheap to compare against.
"""

import pytest

from repro.errors import ConfigError
from repro.sim.stats import RunStats
from repro.slo import SLOBound, max_sustainable_rate, max_sustainable_rates
from repro.workloads.latency import RequestStats
from repro.workloads.model import ArrivalSpec, ServerWorkloadSpec

from repro.bench.engine import AllocSite
from repro.workloads.model import RequestTask

#: p99 grows by this many cycles per rps — with a bound of
#: ``SLOPE * threshold`` the SLO is violated strictly above ``threshold``.
SLOPE = 10.0

#: Per-collector saturation knee used by the synthetic runner.
THRESHOLDS = {"fast": 2100, "slow": 700}


def synthetic_runner(job):
    """p99 = SLOPE * rate below the knee, then a sharp queueing blow-up."""
    spec, collector, heap_bytes, _scale, _seed = job
    rate = spec.arrival.rate_rps
    threshold = THRESHOLDS.get(collector, 1000)
    p99 = SLOPE * rate if rate <= threshold else SLOPE * rate * 100.0
    stats = RunStats(
        benchmark=spec.name, collector=collector, heap_bytes=heap_bytes
    )
    stats.requests = RequestStats(
        count=int(rate), offered=int(rate), p50_cycles=p99 / 3,
        p99_cycles=p99, p999_cycles=p99 * 1.1, max_cycles=p99 * 1.2,
        mean_cycles=p99 / 2,
    )
    stats.total_cycles = 1e6
    return stats


def spec_for(rate=1000.0):
    return ServerWorkloadSpec(
        name="synthetic",
        arrival=ArrivalSpec(rate_rps=rate),
        duration_s=0.05,
        tasks=(
            RequestTask(
                name="get", weight=1.0,
                sites=(AllocSite(1.0, "small", "request"),),
            ),
        ),
    )


def linear_walk(slo, collector, step, max_rate):
    """Exhaustive reference: probe every lattice rate upward until the
    first violation.  Returns (knee, probes)."""
    spec = spec_for()
    probes = 0
    knee = 0
    rate = step
    while rate <= max_rate:
        probes += 1
        stats = synthetic_runner((spec.with_rate(float(rate)), collector,
                                  96 * 1024, 1.0, 13))
        ok, _ = slo.evaluate(stats)
        if not ok:
            return knee, probes
        knee = rate
        rate += step
    return knee, probes


@pytest.mark.parametrize("threshold", [700, 2100])
@pytest.mark.parametrize("step", [50, 100])
def test_knee_matches_linear_walk_with_half_the_probes(threshold, step):
    """Acceptance: the bisection finds the linear walk's knee on a dense
    lattice in at most half the probes."""
    collector = {700: "slow", 2100: "fast"}[threshold]
    slo = SLOBound(p99_cycles=SLOPE * threshold)
    max_rate = 6400
    expected_knee, linear_probes = linear_walk(slo, collector, step, max_rate)
    result = max_sustainable_rate(
        spec_for(), collector, 96 * 1024, slo,
        rate_step=step, max_rate=max_rate, parallel=False,
        cell_runner=synthetic_runner,
    )
    assert result.saturated
    assert result.rate_rps == expected_knee
    assert result.first_violation == expected_knee + step
    assert result.probes <= linear_probes / 2, (
        f"bisection used {result.probes} probes, "
        f"linear walk used {linear_probes}"
    )


def test_many_targets_search_in_lockstep():
    slo = SLOBound(p99_cycles=SLOPE * 2100)
    results = max_sustainable_rates(
        spec_for(), [("fast", 96 * 1024), ("slow", 96 * 1024)], slo,
        rate_step=100, max_rate=6400, parallel=False,
        cell_runner=synthetic_runner,
    )
    # fast's p99 bound is at its own knee; slow blows up at 700 already.
    assert results[("fast", 96 * 1024)].rate_rps == 2100
    assert results[("slow", 96 * 1024)].rate_rps == 700
    for result in results.values():
        assert result.saturated
        # Every probe's verdict was recorded with its violated clauses.
        assert any(not ok for ok, _ in result.evaluations.values())


def test_unsaturated_when_the_slo_always_holds():
    slo = SLOBound(p99_cycles=SLOPE * 10_000_000)
    result = max_sustainable_rate(
        spec_for(), "fast", 96 * 1024, slo,
        rate_step=100, max_rate=3200, parallel=False,
        cell_runner=synthetic_runner,
    )
    assert not result.saturated
    assert result.first_violation is None
    # The reported rate is the highest *probed* rate, on the lattice.
    assert result.rate_rps % 100 == 0
    assert 0 < result.rate_rps <= 3200
    assert result.evaluations[result.rate_rps][0] is True


def test_violation_at_the_floor_means_zero_rate():
    slo = SLOBound(p99_cycles=1.0)  # violated at every positive rate
    result = max_sustainable_rate(
        spec_for(), "fast", 96 * 1024, slo,
        rate_step=100, max_rate=3200, parallel=False,
        cell_runner=synthetic_runner,
    )
    assert result.saturated
    assert result.rate_rps == 0
    assert result.first_violation == 100


def test_search_events_are_schema_valid():
    from repro.obs.bus import TelemetryBus
    from repro.obs.events import validate_event

    class Sink:
        def __init__(self):
            self.events = []

        def accept(self, event):
            self.events.append(event)

    sink = Sink()
    bus = TelemetryBus()
    bus.subscribe(sink)
    slo = SLOBound(p99_cycles=SLOPE * 700)
    result = max_sustainable_rate(
        spec_for(), "slow", 96 * 1024, slo,
        rate_step=100, max_rate=3200, parallel=False,
        cell_runner=synthetic_runner, bus=bus,
    )
    search_events = [e for e in sink.events if e.kind == "slo.search"]
    assert search_events, "search emitted no slo.search events"
    for event in search_events:
        validate_event(event)
    terminal = [e for e in search_events if e.data["status"] != "probe"]
    assert len(terminal) == 1
    assert terminal[0].data["status"] == "knee"
    assert terminal[0].data["rate_rps"] == result.rate_rps
    probes = [e for e in search_events if e.data["status"] == "probe"]
    assert len(probes) == result.probes


def test_search_rejects_bad_configuration():
    slo = SLOBound(p99_cycles=100.0)
    with pytest.raises(ConfigError):
        max_sustainable_rate(
            spec_for(), "fast", 96 * 1024, slo, rate_step=0,
        )
    with pytest.raises(ConfigError):
        max_sustainable_rate(
            spec_for(), "fast", 96 * 1024, slo,
            rate_step=100, max_rate=400, start_rate=1600,
        )
    with pytest.raises(ConfigError):
        max_sustainable_rate("jess", "fast", 96 * 1024, slo)
