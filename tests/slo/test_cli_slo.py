"""``beltway-bench slo``: frontier and search modes end to end."""

import json
from pathlib import Path

import pytest

from repro.harness.cli import main

REPO = Path(__file__).resolve().parents[2]


def mini_file(tmp_path, rate=700):
    path = tmp_path / "mini.json"
    path.write_text(json.dumps({
        "name": "mini",
        "duration_s": 0.05,
        "arrival": {"rate_rps": rate},
        "tasks": [{"name": "get",
                   "sites": [{"type": "small", "lifetime": "request"}]}],
    }))
    return str(path)


def test_slo_frontier_prints_table_and_grep_lines(tmp_path, capsys):
    spec = mini_file(tmp_path)
    code = main(["slo", spec, "--heap-kb", "96", "--no-store",
                 "--rates", "400,800"])
    assert code == 0
    out = capsys.readouterr().out
    assert "rate(rps)" in out  # the frontier table header
    assert "slo-frontier mini/25.25.100@400rps:" in out
    assert "slo-frontier mini/25.25.100@800rps:" in out
    assert "overhead_pct=" in out


def test_slo_frontier_multi_collector_comparison_and_knee(tmp_path, capsys):
    spec = mini_file(tmp_path)
    code = main(["slo", spec, "--heap-kb", "96", "--no-store",
                 "--rates", "400,800",
                 "--collector", "25.25.100", "--collector", "gctk:Appel",
                 "--slo-p99-ms", "1000"])
    assert code == 0
    out = capsys.readouterr().out
    assert "slo-frontier mini/25.25.100@400rps:" in out
    assert "slo-frontier mini/gctk:Appel@400rps:" in out
    # A comparison section shows up once there is more than one collector.
    assert "p99" in out
    # A generous p99 bound makes every point sustainable: knee = top rate.
    assert "knee mini/25.25.100: 800 rps under" in out
    assert "knee mini/gctk:Appel: 800 rps under" in out


def test_slo_frontier_no_distill_drops_overheads(tmp_path, capsys):
    spec = mini_file(tmp_path)
    code = main(["slo", spec, "--heap-kb", "96", "--no-store",
                 "--rates", "400", "--no-distill"])
    assert code == 0
    out = capsys.readouterr().out
    assert "overhead_pct=None" in out


def test_slo_frontier_json_and_output_artefacts(tmp_path, capsys):
    spec = mini_file(tmp_path)
    report = tmp_path / "report.txt"
    artefact = tmp_path / "slo.json"
    code = main(["slo", spec, "--heap-kb", "96", "--no-store",
                 "--rates", "400,800",
                 "--output", str(report), "--json", str(artefact)])
    assert code == 0
    out = capsys.readouterr().out
    assert f"slo report -> {report}" in out
    assert f"slo JSON -> {artefact}" in out
    text = report.read_text()
    assert "slo-frontier mini/25.25.100@400rps:" in text
    data = json.loads(artefact.read_text())
    frontiers = data["frontiers"]
    assert len(frontiers) == 1
    assert [p["rate_rps"] for p in frontiers[0]["points"]] == [400.0, 800.0]
    assert frontiers[0]["points"][0]["distilled"]["baseline_collections"] == 0


def test_slo_search_finds_a_rate_and_writes_json(tmp_path, capsys):
    spec = mini_file(tmp_path)
    artefact = tmp_path / "search.json"
    code = main(["slo", spec, "--heap-kb", "96", "--no-store", "--search",
                 "--slo-p99-ms", "1000", "--rate-step", "200",
                 "--max-rate", "3200", "--json", str(artefact)])
    assert code == 0
    out = capsys.readouterr().out
    assert "slo-search 25.25.100@98304B:" in out
    assert "max_rate=" in out and "probes=" in out
    data = json.loads(artefact.read_text())
    result = data["search"]["results"][0]
    assert result["collector"] == "25.25.100"
    assert result["rate_rps"] % 200 == 0
    assert result["probes"] >= 1
    assert data["search"]["benchmark"] == "mini"


def test_slo_search_is_deterministic(tmp_path, capsys):
    spec = mini_file(tmp_path)
    args = ["slo", spec, "--heap-kb", "96", "--no-store", "--search",
            "--slo-p99-ms", "1000", "--rate-step", "200",
            "--max-rate", "1600"]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert main(args) == 0
    second = capsys.readouterr().out
    lines = [l for l in first.splitlines() if l.startswith("slo-search")]
    assert lines and lines == \
        [l for l in second.splitlines() if l.startswith("slo-search")]


def test_slo_through_grid_store_replays_warm(tmp_path, capsys):
    spec = mini_file(tmp_path)
    args = ["slo", spec, "--heap-kb", "96", "--rates", "400,800",
            "--store", str(tmp_path / "store")]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert main(args) == 0
    second = capsys.readouterr().out
    assert " 0 executed" in second.splitlines()[-1]
    assert [l for l in first.splitlines() if l.startswith("slo-frontier")] \
        == [l for l in second.splitlines() if l.startswith("slo-frontier")]


def test_slo_usage_errors(tmp_path):
    spec = mini_file(tmp_path)
    # Neither --rates nor --search.
    with pytest.raises(SystemExit):
        main(["slo", spec, "--heap-kb", "96", "--no-store"])
    # --search without any SLO bound.
    with pytest.raises(SystemExit):
        main(["slo", spec, "--heap-kb", "96", "--no-store", "--search"])
    # Closed-loop benchmark names are not servable.
    with pytest.raises(SystemExit):
        main(["slo", "jess", "--heap-kb", "96", "--no-store",
              "--rates", "400"])
