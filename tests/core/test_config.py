"""Unit tests for Beltway configuration parsing (paper §3.1–3.2 notation)."""

import pytest

from repro.core.config import (
    GROWABLE,
    PAPER_CONFIGS,
    BeltSpec,
    BeltwayConfig,
    PromotionStyle,
)
from repro.errors import ConfigError


def test_parse_semispace():
    for text in ("SS", "BSS", "semispace", "100"):
        cfg = BeltwayConfig.parse(text)
        assert len(cfg.belts) == 1
        assert cfg.belts[0].growable
        assert cfg.style is PromotionStyle.GENERATIONAL


def test_parse_appel():
    cfg = BeltwayConfig.parse("Appel")
    assert len(cfg.belts) == 2
    assert all(b.growable for b in cfg.belts)
    cfg2 = BeltwayConfig.parse("100.100")
    assert cfg2.belts == cfg.belts


def test_parse_three_generation():
    cfg = BeltwayConfig.parse("100.100.100")
    assert len(cfg.belts) == 3
    assert cfg.is_complete


def test_parse_beltway_xx():
    cfg = BeltwayConfig.parse("25.25")
    assert [b.increment_pct for b in cfg.belts] == [25, 25]
    assert cfg.belts[0].max_increments == 1  # nursery trigger
    assert cfg.belts[1].max_increments is None
    assert not cfg.is_complete  # the paper's completeness failure


def test_parse_beltway_xx100():
    cfg = BeltwayConfig.parse("25.25.100")
    assert [b.increment_pct for b in cfg.belts] == [25, 25, 100]
    assert cfg.is_complete


def test_parse_bof_and_bofm():
    bof = BeltwayConfig.parse("BOF.33")
    assert bof.style is PromotionStyle.OLDER_FIRST
    assert [b.increment_pct for b in bof.belts] == [33, 33]
    assert not bof.is_complete
    bofm = BeltwayConfig.parse("BOFM.25")
    assert bofm.style is PromotionStyle.OLDER_FIRST_MIX
    assert len(bofm.belts) == 1
    assert not bofm.is_complete


def test_parse_fixed_nursery():
    cfg = BeltwayConfig.parse("Fixed.25")
    assert cfg.belts[0].increment_pct == 25
    assert cfg.belts[0].max_increments == 1
    assert cfg.belts[1].growable


def test_parse_rejects_garbage():
    for text in ("", "banana", "0.25", "25.", "101.10", "BOF.0"):
        with pytest.raises(ConfigError):
            BeltwayConfig.parse(text)


def test_all_paper_configs_parse():
    for text in PAPER_CONFIGS:
        cfg = BeltwayConfig.parse(text)
        assert cfg.belts


def test_increment_frames_sizing():
    """An X% -of-usable increment occupies X/(100+X) of the heap."""
    spec = BeltSpec(100)
    assert spec.increment_frames(100) is None  # growable
    assert BeltSpec(50).increment_frames(150) == 50  # 50/150
    assert BeltSpec(25).increment_frames(125) == 25  # 25/125 = 20%
    assert BeltSpec(33).increment_frames(133) == 33
    assert BeltSpec(10).increment_frames(4) == 1  # floor, min 1 frame


def test_appel_increment_is_half_heap_equivalent():
    """X=100 is growable: bounded only by the reserve, i.e. half the heap."""
    assert BeltSpec(GROWABLE).growable


def test_bad_belt_counts():
    with pytest.raises(ConfigError):
        BeltwayConfig(name="x", belts=())
    with pytest.raises(ConfigError):
        BeltwayConfig(
            name="x",
            belts=(BeltSpec(25),),
            style=PromotionStyle.OLDER_FIRST,
        )
    with pytest.raises(ConfigError):
        BeltwayConfig(
            name="x",
            belts=(BeltSpec(25), BeltSpec(25)),
            style=PromotionStyle.OLDER_FIRST_MIX,
        )


def test_ttd_requires_two_nursery_increments():
    with pytest.raises(ConfigError):
        BeltwayConfig(
            name="x",
            belts=(BeltSpec(25, max_increments=1), BeltSpec(25)),
            time_to_die_bytes=1024,
        )
    cfg = BeltwayConfig(
        name="x",
        belts=(BeltSpec(25, max_increments=2), BeltSpec(25)),
        time_to_die_bytes=1024,
    )
    assert cfg.time_to_die_bytes == 1024


def test_describe_and_completeness():
    cfg = BeltwayConfig.parse("33.33.100")
    text = cfg.describe()
    assert "33.33.100" in text
    assert BeltwayConfig.parse("BSS").is_complete
    assert BeltwayConfig.parse("Appel").is_complete
