"""Unit tests for BeltwayHeap internals: allocation paths, reserve gating,
structure maintenance, introspection."""

import pytest

from repro.core.config import BeltwayConfig
from repro.errors import OutOfMemory
from repro.runtime import VM, MutatorContext


def make_vm(config="25.25.100", frames=64, **kwargs):
    kwargs.setdefault("boot_ballast_slots", 0)
    vm = VM(heap_bytes=frames * 256, collector=config, debug_verify=True, **kwargs)
    vm.define_type("node", nrefs=2, nscalars=1)
    return vm, MutatorContext(vm)


def test_first_allocation_opens_nursery_increment():
    vm, mu = make_vm()
    heap = vm.plan
    assert heap.allocation_increment is None
    mu.alloc_named("node")
    inc = heap.allocation_increment
    assert inc is not None
    assert inc.belt.index == 0
    assert inc.num_frames == 1


def test_allocation_grows_increment_frame_by_frame():
    vm, mu = make_vm()
    heap = vm.plan
    node = vm.types.by_name("node")
    mu.alloc(node)
    first = heap.allocation_increment
    frames_before = first.num_frames
    # fill well past one frame (64 words / 8-word node = 8 per frame)
    for _ in range(20):
        mu.alloc(node).drop()
    assert heap.allocation_increment is first
    assert first.num_frames > frames_before


def test_nursery_bounded_by_increment_size():
    vm, mu = make_vm("25.25.100")
    heap = vm.plan
    node = vm.types.by_name("node")
    bound = heap.belts[0].increment_frames
    for _ in range(400):
        mu.alloc(node).drop()
        inc = heap.allocation_increment
        if inc is not None:
            assert inc.num_frames <= bound


def test_write_and_read_ref_fields():
    vm, mu = make_vm()
    heap = vm.plan
    a = mu.alloc_named("node")
    b = mu.alloc_named("node")
    heap.write_ref_field(a.addr, 0, b.addr)
    assert heap.read_ref_field(a.addr, 0) == b.addr


def test_occupied_frames_and_live_upper_bound():
    vm, mu = make_vm()
    heap = vm.plan
    node = vm.types.by_name("node")
    keep = [mu.alloc(node) for _ in range(10)]
    assert heap.occupied_frames >= 1
    assert heap.live_words_upper_bound >= 10 * node.size_words()


def test_describe_structure_mentions_allocation_increment():
    vm, mu = make_vm()
    mu.alloc_named("node")
    text = vm.plan.describe_structure()
    assert "belt 0" in text
    assert "A#" in text


def test_describe_structure_bof_roles():
    vm, mu = make_vm("BOF.25")
    mu.alloc_named("node")
    text = vm.plan.describe_structure()
    assert "(A)" in text and "(C)" in text


def test_reserve_allows_is_exact():
    """_reserve_allows gates mutator frame acquisition on
    free - extra >= reserve (copies may consume the reserve; the mutator
    may not)."""
    vm, mu = make_vm("Appel", frames=32)
    heap = vm.plan
    mu.alloc_named("node")
    free = heap.space.heap_frames_free()
    reserve = heap.current_reserve_frames()
    assert heap._reserve_allows(extra_frames=free - reserve)
    assert not heap._reserve_allows(extra_frames=free - reserve + 1)


def test_mutator_growth_rechecks_reserve():
    """Growing the nursery frame by frame keeps re-checking the reserve,
    so allocation stops (collects) rather than overcommitting."""
    vm, mu = make_vm("Appel", frames=32)
    heap = vm.plan
    node = vm.types.by_name("node")
    keep = []
    try:
        for _ in range(2000):
            before_frames = heap.space.heap_frames_free()
            keep.append(mu.alloc(node))
            after_frames = heap.space.heap_frames_free()
            if after_frames < before_frames and not heap.collections:
                # a mutator frame acquisition (no GC yet): the check must
                # have held at acquisition time
                assert after_frames >= heap.current_reserve_frames() - 1
    except OutOfMemory:
        pass  # expected eventually: everything is kept alive


def test_collect_listener_invoked():
    vm, mu = make_vm()
    seen = []
    vm.plan.collection_listeners.append(lambda r: seen.append(r.reason))
    node = vm.types.by_name("node")
    for _ in range(400):
        mu.alloc(node).drop()
    assert seen
    assert len(seen) == len(vm.plan.collections)


def test_record_auxiliary_collection():
    from repro.core.collector import CollectionResult

    vm, mu = make_vm()
    seen = []
    vm.plan.collection_listeners.append(lambda r: seen.append(r))
    fake = CollectionResult(reason="aux")
    vm.plan.record_auxiliary_collection(fake)
    assert vm.plan.collections[-1] is fake
    assert seen == [fake]


def test_num_increments_tracks_structure():
    vm, mu = make_vm()
    heap = vm.plan
    assert heap.num_increments == 0
    mu.alloc_named("node")
    assert heap.num_increments == 1


def test_roots_include_boot_objects():
    vm, mu = make_vm()
    roots = list(vm.plan.roots())
    # boot type objects at minimum (metatype, node, standard types absent
    # until the engine defines them)
    assert len(roots) >= 2
    h = mu.alloc_named("node")
    assert h.addr in set(vm.plan.roots())


def test_min_nursery_rule_prevents_tiny_nurseries():
    """With the heap nearly full of live data, opening a nursery below
    min_nursery_frames is refused and collection (then OOM) follows."""
    vm, mu = make_vm("Appel", frames=16)
    node = vm.types.by_name("node")
    keep = []
    with pytest.raises(OutOfMemory):
        for _ in range(600):
            keep.append(mu.alloc(node))


def test_forced_collect_records_reason():
    vm, mu = make_vm()
    mu.alloc_named("node")
    result = vm.plan.collect("because-test")
    assert result.reason == "because-test"
    assert vm.plan.collections[-1] is result
