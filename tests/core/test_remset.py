"""Unit tests for the per-frame-pair remembered sets."""

from repro.core.remset import RememberedSets


def test_insert_and_count():
    rs = RememberedSets()
    rs.insert(3, 1, 0x1000)
    rs.insert(3, 1, 0x1004)
    rs.insert(4, 1, 0x2000)
    assert len(rs) == 3
    assert rs.inserts == 3


def test_duplicate_slots_deduplicated():
    rs = RememberedSets()
    rs.insert(3, 1, 0x1000)
    rs.insert(3, 1, 0x1000)
    assert len(rs) == 1
    assert rs.inserts == 2
    assert rs.duplicate_inserts == 1


def test_same_slot_different_pairs_kept():
    """A slot overwritten with a pointer to a different frame appears under
    both pairs; re-reading at collection time disambiguates."""
    rs = RememberedSets()
    rs.insert(3, 1, 0x1000)
    rs.insert(3, 2, 0x1000)
    assert len(rs) == 2


def test_slots_into_targets():
    rs = RememberedSets()
    rs.insert(3, 1, 0x1000)
    rs.insert(4, 1, 0x2000)
    rs.insert(3, 2, 0x3000)
    got = sorted(rs.slots_into({1}, set()))
    assert got == [0x1000, 0x2000]


def test_slots_into_excludes_sources():
    """Remsets between increments collected together are ignored (§3.3.2)."""
    rs = RememberedSets()
    rs.insert(3, 1, 0x1000)  # 3 -> 1: both collected, ignore
    rs.insert(4, 1, 0x2000)  # outside -> 1: needed
    got = list(rs.slots_into({1, 3}, {1, 3}))
    assert got == [0x2000]


def test_drop_frames_wholesale():
    rs = RememberedSets()
    rs.insert(3, 1, 0x1000)
    rs.insert(1, 4, 0x2000)  # sourced in dropped frame
    rs.insert(5, 6, 0x3000)  # unrelated
    dropped = rs.drop_frames({1})
    assert dropped == 2
    assert len(rs) == 1
    assert list(rs.slots_into({6}, set())) == [0x3000]


def test_drop_frames_empty():
    rs = RememberedSets()
    assert rs.drop_frames({9}) == 0


def test_entries_for_pair():
    rs = RememberedSets()
    rs.insert(3, 1, 0x1000)
    assert rs.entries_for_pair(3, 1) == {0x1000}
    assert rs.entries_for_pair(1, 3) == set()
