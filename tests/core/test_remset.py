"""Unit tests for the per-frame-pair remembered sets."""

from repro.core.remset import RememberedSets


def test_insert_and_count():
    rs = RememberedSets()
    rs.insert(3, 1, 0x1000)
    rs.insert(3, 1, 0x1004)
    rs.insert(4, 1, 0x2000)
    assert len(rs) == 3
    assert rs.inserts == 3


def test_duplicate_slots_deduplicated():
    rs = RememberedSets()
    rs.insert(3, 1, 0x1000)
    rs.insert(3, 1, 0x1000)
    assert len(rs) == 1
    assert rs.inserts == 2
    assert rs.duplicate_inserts == 1


def test_same_slot_different_pairs_kept():
    """A slot overwritten with a pointer to a different frame appears under
    both pairs; re-reading at collection time disambiguates."""
    rs = RememberedSets()
    rs.insert(3, 1, 0x1000)
    rs.insert(3, 2, 0x1000)
    assert len(rs) == 2


def test_slots_into_targets():
    rs = RememberedSets()
    rs.insert(3, 1, 0x1000)
    rs.insert(4, 1, 0x2000)
    rs.insert(3, 2, 0x3000)
    got = sorted(rs.slots_into({1}, set()))
    assert got == [0x1000, 0x2000]


def test_slots_into_excludes_sources():
    """Remsets between increments collected together are ignored (§3.3.2)."""
    rs = RememberedSets()
    rs.insert(3, 1, 0x1000)  # 3 -> 1: both collected, ignore
    rs.insert(4, 1, 0x2000)  # outside -> 1: needed
    got = list(rs.slots_into({1, 3}, {1, 3}))
    assert got == [0x2000]


def test_drop_frames_wholesale():
    rs = RememberedSets()
    rs.insert(3, 1, 0x1000)
    rs.insert(1, 4, 0x2000)  # sourced in dropped frame
    rs.insert(5, 6, 0x3000)  # unrelated
    dropped = rs.drop_frames({1})
    assert dropped == 2
    assert len(rs) == 1
    assert list(rs.slots_into({6}, set())) == [0x3000]


def test_drop_frames_empty():
    rs = RememberedSets()
    assert rs.drop_frames({9}) == 0


def test_entries_for_pair():
    rs = RememberedSets()
    rs.insert(3, 1, 0x1000)
    assert rs.entries_for_pair(3, 1) == {0x1000}
    assert rs.entries_for_pair(1, 3) == set()


# ----------------------------------------------------------------------
# SSB layout (ISSUE 2): target-frame index and drain-time dedup
# ----------------------------------------------------------------------

def test_slots_into_scales_with_matching_pairs_only():
    """The target-frame index means drain cost is O(matching pairs), not
    O(all pairs): the regression this guards is ``slots_into`` going back
    to iterating every (src, tgt) pair in the table."""
    rs = RememberedSets()
    for src in range(100, 200):  # 100 pairs into the collected frame
        rs.insert(src, 1, src << 8)
    for src in range(100, 200):  # 1000 pairs into uncollected frames
        for tgt in range(10, 20):
            rs.insert(src, tgt, (src << 8) | tgt)
    rs.pairs_scanned = 0
    got = list(rs.slots_into({1}, set()))
    assert len(got) == 100
    assert rs.pairs_scanned == 100  # examined only pairs targeting frame 1


def test_slots_into_drains_in_pair_creation_order():
    """Drain order must reproduce the eager dict-of-sets iteration order
    (collection copy order depends on it)."""
    rs = RememberedSets()
    rs.insert(5, 1, 0x5000)
    rs.insert(3, 1, 0x3000)
    rs.insert(4, 1, 0x4000)
    assert list(rs.slots_into({1}, set())) == [0x5000, 0x3000, 0x4000]


def test_pair_recreated_after_drop_moves_to_back():
    """Dict parity: deleting a key and re-inserting it moves it to the
    back of the iteration order."""
    rs = RememberedSets()
    rs.insert(5, 1, 0x5000)
    rs.insert(3, 1, 0x3000)
    assert rs.drop_frames({5}) == 1
    rs.insert(5, 1, 0x5100)
    assert list(rs.slots_into({1}, set())) == [0x3000, 0x5100]


def test_duplicate_accounting_across_syncs():
    """Dedup moved from insert time to drain time; the cumulative counters
    must not notice (duplicates = inserts - distinct, order-independent)."""
    rs = RememberedSets()
    rs.insert(3, 1, 0xA0)
    rs.insert(3, 1, 0xA0)  # duplicate within the pending buffer
    assert rs.duplicate_inserts == 1  # property forces a drain
    rs.insert(3, 1, 0xA0)  # duplicate against the already-synced set
    rs.insert(3, 1, 0xB0)
    assert rs.duplicate_inserts == 2
    assert rs.total_entries == 2
    assert rs.inserts == 4


def test_drop_frames_drains_pending_before_dropping():
    """Dropping a pair with an undrained buffer must still count its
    duplicates and return the deduplicated entry count."""
    rs = RememberedSets()
    rs.insert(3, 1, 0xA0)
    rs.insert(3, 1, 0xA0)
    assert rs.drop_frames({1}) == 1
    assert rs.duplicate_inserts == 1
    assert len(rs) == 0
