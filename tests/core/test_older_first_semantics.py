"""Deeper semantic tests for the older-first configurations (BOF, BOFM).

The paper's §3.1 defines their behaviours precisely; these tests pin the
mechanics the throughput numbers depend on: window FIFO order, belt
flips, allocation/copy mixing, and — the design's purpose — that young
objects are given time to die before being copied.
"""

import pytest

from repro.runtime import VM, MutatorContext


def make_vm(config, frames=64):
    vm = VM(
        heap_bytes=frames * 256,
        collector=config,
        debug_verify=True,
        boot_ballast_slots=0,
    )
    vm.define_type("node", nrefs=2, nscalars=1)
    return vm, MutatorContext(vm)


def rotate(vm, mu, n, every=8, window=40):
    node = vm.types.by_name("node")
    keep = []
    for i in range(n):
        h = mu.alloc(node)
        if i % every == 0:
            keep.append(h)
            if len(keep) > window:
                keep.pop(0).drop()
        else:
            h.drop()
    return keep


# ----------------------------------------------------------------------
# BOF
# ----------------------------------------------------------------------
def test_bof_collects_oldest_window_first():
    vm, mu = make_vm("BOF.25")
    rotate(vm, mu, 3000)
    heap = vm.plan
    belt_a = heap.belts[heap.of_alloc_belt]
    if belt_a.num_increments >= 2:
        batch = heap.policy.choose_collection(heap)
        assert batch[0] is belt_a.oldest_collectible()
        assert batch[0] is belt_a.increments[0] or belt_a.increments[0].is_empty


def test_bof_survivors_land_on_copy_belt():
    vm, mu = make_vm("BOF.25")
    node = vm.types.by_name("node")
    pinned = [mu.alloc(node) for _ in range(30)]  # genuine survivors
    rotate(vm, mu, 4000)
    heap = vm.plan
    copy_belt = heap.belts[1 - heap.of_alloc_belt]
    # the pinned objects must have been copied to the copy belt
    assert copy_belt.occupancy_words > 0 or heap.flips > 0


def test_bof_flip_swaps_roles_and_preserves_data():
    vm, mu = make_vm("BOF.25", frames=48)
    node = vm.types.by_name("node")
    keep = []
    flips_before = vm.plan.flips
    for i in range(25000):
        h = mu.alloc(node)
        if i % 10 == 0:
            mu.write_int(h, 0, i)
            keep.append((h, i))
            if len(keep) > 40:
                keep.pop(0)[0].drop()
        else:
            h.drop()
        if vm.plan.flips > flips_before + 1:
            break
    assert vm.plan.flips > flips_before
    for h, value in keep:
        assert mu.read_int(h, 0) == value
    vm.plan.verify()


def test_bof_gives_time_to_die():
    """BOF copies less than a semi-space on a short-lived workload: the
    window starts at the old end, so the newest objects are never copied
    before they had the whole heap's worth of allocation to die."""

    def copied(config):
        vm, mu = make_vm(config, frames=64)
        node = vm.types.by_name("node")
        for _ in range(6000):
            mu.alloc(node).drop()
        stats = vm.finish()
        return stats.copied_bytes

    assert copied("BOF.25") <= copied("BSS")


# ----------------------------------------------------------------------
# BOFM
# ----------------------------------------------------------------------
def test_bofm_single_belt_mixing():
    vm, mu = make_vm("BOFM.25")
    node = vm.types.by_name("node")
    pinned = [mu.alloc(node) for _ in range(30)]  # guaranteed survivors
    rotate(vm, mu, 4000)
    heap = vm.plan
    assert len(heap.belts) == 1
    # some increment holds both copied-in survivors and fresh allocation
    mixed = [
        inc
        for inc in heap.belts[0]
        if inc.copied_in_words and inc.region.allocated_words > inc.copied_in_words
    ]
    assert mixed or heap.allocation_increment is None
    vm.plan.verify()


def test_bofm_collects_oldest_increment():
    vm, mu = make_vm("BOFM.25")
    rotate(vm, mu, 2500)
    heap = vm.plan
    belt = heap.belts[0]
    if belt.num_increments >= 2:
        batch = heap.policy.choose_collection(heap)
        assert len(batch) == 1
        non_empty = [i for i in belt.increments if not i.is_empty]
        assert batch[0] is non_empty[0]


def test_bofm_collecting_allocation_increment_resets_it():
    """When only the allocation increment remains, BOFM collects it and
    allocation resumes in the survivors' increment."""
    vm, mu = make_vm("BOFM.25", frames=32)
    node = vm.types.by_name("node")
    keep = [mu.alloc(node) for _ in range(4)]
    heap = vm.plan
    alloc_inc = heap.allocation_increment
    heap.collect("forced")
    assert alloc_inc not in heap.belts[0].increments
    mu.alloc(node).drop()  # allocation still works
    for h in keep:
        assert not h.is_null
    vm.plan.verify()


def test_older_first_barrier_unidirectional():
    """In BOFM only right-to-left (young→old) pointers are remembered
    (paper §3.3.1's example)."""
    vm, mu = make_vm("BOFM.25")
    rotate(vm, mu, 2500)
    heap = vm.plan
    belt = heap.belts[0]
    if belt.num_increments < 2:
        pytest.skip("need two increments")
    node = vm.types.by_name("node")
    old_inc = belt.increments[0]
    # fabricate: object in the newest increment pointing into the oldest
    young = mu.alloc(node)
    old_addr = None
    frame = old_inc.region.frames[0]
    old_addr = vm.space.frame_base(frame)
    before = len(heap.remsets)
    vm.model  # young -> old: target collected sooner => recorded
    heap.barrier.write_ref(young.addr, vm.model.ref_slot_addr(young.addr, 0), old_addr)
    assert len(heap.remsets) == before + 1
    # old -> young: target collected later => not recorded
    before = len(heap.remsets)
    heap.barrier.write_ref(old_addr, vm.model.ref_slot_addr(old_addr, 0), young.addr)
    assert len(heap.remsets) == before
