"""Unit tests for the frame-based unidirectional write barrier (Fig. 4)."""

import pytest

from repro.core.barrier import FrameBarrier
from repro.core.remset import RememberedSets
from repro.heap import AddressSpace
from repro.heap.frame import BOOT_ORDER


@pytest.fixture
def env():
    space = AddressSpace(heap_frames=8, frame_shift=8)
    frames = [space.acquire_frame("t") for _ in range(4)]
    for frame, order in zip(frames, (1, 2, 3, 4)):
        space.set_order(frame, order)
        frame.used_words = frame.size_words
    barrier = FrameBarrier(space, RememberedSets())
    return space, frames, barrier


def obj_in(space, frame, offset_words=0):
    return space.frame_base(frame) + offset_words * 4


def test_intra_frame_pointer_not_recorded(env):
    space, frames, barrier = env
    src = obj_in(space, frames[0])
    tgt = obj_in(space, frames[0], 10)
    barrier.write_ref(src, src + 12, tgt)
    assert len(barrier.remsets) == 0
    assert barrier.stats.fast_path == 1
    assert barrier.stats.slow_path == 0
    assert space.load(src + 12) == tgt  # the store happened


def test_pointer_to_later_collected_frame_not_recorded(env):
    space, frames, barrier = env
    src = obj_in(space, frames[0])  # order 1
    tgt = obj_in(space, frames[2])  # order 3: collected after source
    barrier.write_ref(src, src + 12, tgt)
    assert len(barrier.remsets) == 0


def test_pointer_to_sooner_collected_frame_recorded(env):
    space, frames, barrier = env
    src = obj_in(space, frames[2])  # order 3
    tgt = obj_in(space, frames[0])  # order 1: collected first
    barrier.write_ref(src, src + 12, tgt)
    assert len(barrier.remsets) == 1
    assert barrier.stats.slow_path == 1
    pair = barrier.remsets.entries_for_pair(frames[2].index, frames[0].index)
    assert pair == {src + 12}


def test_equal_order_frames_not_recorded(env):
    """Frames of one increment share a stamp: no intra-increment remsets."""
    space, frames, barrier = env
    space.set_order(frames[1], 1)  # same stamp as frames[0]
    src = obj_in(space, frames[1])
    tgt = obj_in(space, frames[0])
    barrier.write_ref(src, src + 12, tgt)
    assert len(barrier.remsets) == 0


def test_null_store_filtered(env):
    space, frames, barrier = env
    src = obj_in(space, frames[2])
    barrier.write_ref(src, src + 12, 0)
    assert barrier.stats.null_stores == 1
    assert len(barrier.remsets) == 0
    assert space.load(src + 12) == 0


def test_boot_to_heap_recorded(env):
    """Boot frames carry an infinite order: boot->heap is always recorded."""
    space, frames, barrier = env
    boot = space.acquire_frame("boot", boot=True)
    boot.used_words = boot.size_words
    src = obj_in(space, boot)
    tgt = obj_in(space, frames[3])  # highest heap order, still < BOOT_ORDER
    assert boot.collect_order == BOOT_ORDER
    barrier.write_ref(src, src + 4, tgt)
    assert len(barrier.remsets) == 1


def test_heap_to_boot_never_recorded(env):
    """TIB-pointer initialisation (heap young -> boot old) is filtered by
    the order compare — the §3.3.2 overhead costs only the fast path."""
    space, frames, barrier = env
    boot = space.acquire_frame("boot", boot=True)
    boot.used_words = boot.size_words
    src = obj_in(space, frames[0])
    tgt = obj_in(space, boot)
    barrier.write_ref(src, src + 4, tgt)
    assert len(barrier.remsets) == 0
    assert barrier.stats.fast_path == 1


def test_record_collector_pointer_no_store(env):
    space, frames, barrier = env
    src = obj_in(space, frames[2])
    tgt = obj_in(space, frames[0])
    barrier.record_collector_pointer(src, src + 12, tgt)
    assert len(barrier.remsets) == 1
    assert space.load(src + 12) == 0  # no store performed
    assert barrier.stats.fast_path == 0  # not mutator activity


def test_slow_fraction(env):
    space, frames, barrier = env
    src = obj_in(space, frames[2])
    tgt_low = obj_in(space, frames[0])
    tgt_same = obj_in(space, frames[2], 20)
    barrier.write_ref(src, src + 12, tgt_low)
    barrier.write_ref(src, src + 16, tgt_same)
    barrier.write_ref(src, src + 20, tgt_same)
    assert barrier.stats.fast_path == 3
    assert barrier.stats.slow_path == 1
    assert barrier.stats.slow_fraction == pytest.approx(1 / 3)
