"""Property-based tests for collection-order stamping and the reserve.

The barrier's soundness rests on two invariants the paper states in
§3.3.1 and §3.3.4; hypothesis drives random belt structures at them:

* restamping never reorders two surviving increments (so a pointer that
  was correctly *not* recorded can never become needed);
* the reserve never falls below the largest collectible increment, and
  adding occupancy never shrinks it.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.belt import Belt
from repro.core.config import BeltSpec
from repro.core.order import restamp
from repro.core.reserve import SLACK_FRAMES, required_reserve_frames
from repro.heap import AddressSpace


def build_heap_structure(layout):
    """layout: list of (pct, [frames_per_increment...]) per belt."""
    total = sum(sum(f for f in incs) for _, incs in layout) + 8
    space = AddressSpace(heap_frames=max(total * 2, 16), frame_shift=8)
    belts = []
    for index, (pct, incs) in enumerate(layout):
        belt = Belt(index, BeltSpec(pct), space, space.heap_frames)
        for frames in incs:
            inc = belt.open_increment()
            inc.max_frames = None  # let the random layout stand
            for _ in range(frames):
                inc.add_frame()
                inc.alloc(space.frame_words)
        belts.append(belt)
    return space, belts


belt_layout = st.lists(
    st.tuples(
        st.integers(min_value=10, max_value=100),
        st.lists(st.integers(min_value=1, max_value=4), min_size=0, max_size=4),
    ),
    min_size=1,
    max_size=3,
)


@given(belt_layout)
@settings(max_examples=60, deadline=None)
def test_restamp_is_monotone_in_structure_order(layout):
    space, belts = build_heap_structure(layout)
    restamp(space, belts)
    stamps = [inc.stamp for belt in belts for inc in belt.increments]
    assert stamps == sorted(stamps)
    assert len(set(stamps)) == len(stamps)  # distinct per increment
    for belt in belts:
        for inc in belt.increments:
            for frame in inc.region.frames:
                assert frame.collect_order == inc.stamp


@given(belt_layout)
@settings(max_examples=60, deadline=None)
def test_restamp_preserves_relative_order(layout):
    """Stamping twice (idempotence) and after appending a new increment
    never swaps the relative order of existing increments."""
    space, belts = build_heap_structure(layout)
    restamp(space, belts)
    before = [
        (id(inc), inc.stamp) for belt in belts for inc in belt.increments
    ]
    belts[-1].open_increment()  # append at the back of the last belt
    restamp(space, belts)
    after = {
        id(inc): inc.stamp for belt in belts for inc in belt.increments
    }
    for (a_id, a_stamp), (b_id, b_stamp) in zip(before, before[1:]):
        assert (a_stamp < b_stamp) == (after[a_id] < after[b_id])


@given(belt_layout)
@settings(max_examples=60, deadline=None)
def test_reserve_covers_largest_increment(layout):
    space, belts = build_heap_structure(layout)
    top = len(belts) - 1
    reserve = required_reserve_frames(
        belts, lambda b: min(b + 1, top), None
    )
    largest = max(
        (inc.num_frames for belt in belts for inc in belt.increments),
        default=0,
    )
    if largest:
        assert reserve >= largest + SLACK_FRAMES


@given(belt_layout, st.integers(min_value=1, max_value=3))
@settings(max_examples=40, deadline=None)
def test_reserve_monotone_under_growth(layout, grow):
    """Adding occupancy to any increment never shrinks the reserve."""
    space, belts = build_heap_structure(layout)
    top = len(belts) - 1
    target = lambda b: min(b + 1, top)  # noqa: E731
    before = required_reserve_frames(belts, target, None)
    victim = None
    for belt in belts:
        if belt.increments:
            victim = belt.increments[-1]
            break
    if victim is None:
        return
    victim.max_frames = None
    for _ in range(grow):
        victim.add_frame()
        victim.alloc(space.frame_words)
    after = required_reserve_frames(belts, target, None)
    assert after >= before
