"""Fixed-seed counter equivalence for the collection-critical fast paths.

The SSB remsets, the compiled mutator store path and the batched Cheney
scan (ISSUE 2) are pure mechanism changes: every statistics counter —
memory accesses, barrier fast/slow/null counts, remset inserts and
duplicates, copied bytes, cost-model cycles — must be bit-identical to
the straightforward implementations they replaced.  The golden values in
``tests/data/golden_counters.json`` were captured by running the
pre-rework code (see ``tests/data/capture_golden.py``); these tests replay
the identical fixed-seed runs and compare every counter exactly.
"""

import json
from pathlib import Path

import pytest

from repro.bench.engine import SyntheticMutator
from repro.bench.spec import benchmark_spec
from repro.errors import OutOfMemory
from repro.runtime.vm import VM

GOLDEN_PATH = Path(__file__).resolve().parent.parent / "data" / "golden_counters.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())


def replay(benchmark: str, collector: str, heap_bytes: int, scale: float,
           seed: int, tier: str = None) -> dict:
    spec = benchmark_spec(benchmark, scale)
    vm = VM(heap_bytes, collector=collector, locality=spec.locality,
            benchmark_name=spec.name, tier=tier)
    engine = SyntheticMutator(vm, spec, seed=seed)
    try:
        stats = engine.run()
    except OutOfMemory as error:
        stats = vm.finish(completed=False, failure=str(error))
    remsets = vm.plan.remsets
    barrier = vm.plan.barrier.stats
    return {
        "completed": stats.completed,
        "load_count": vm.space.load_count,
        "store_count": vm.space.store_count,
        "allocations": stats.allocations,
        "allocated_bytes": stats.allocated_bytes,
        "copied_bytes": stats.copied_bytes,
        "collections": stats.collections,
        "full_heap_collections": stats.full_heap_collections,
        "barrier_fast": barrier.fast_path,
        "barrier_slow": barrier.slow_path,
        "barrier_null": barrier.null_stores,
        "remset_inserts": remsets.inserts,
        "remset_duplicates": remsets.duplicate_inserts,
        "remset_entries_final": len(remsets),
        "peak_remset_entries": stats.peak_remset_entries,
        "total_cycles": stats.total_cycles,
        "gc_cycles": stats.gc_cycles,
        "mutator_cycles": stats.mutator_cycles,
    }


@pytest.mark.parametrize("cell", sorted(GOLDEN["cells"]))
def test_counters_bit_identical(cell):
    benchmark, collector = cell.split("/", 1)
    golden = GOLDEN["cells"][cell]
    got = replay(benchmark, collector, golden["heap_bytes"],
                 GOLDEN["scale"], GOLDEN["seed"])
    expected = {k: v for k, v in golden.items() if k != "heap_bytes"}
    assert got == expected
