"""Unit tests for collection-order stamping and the dynamic copy reserve."""

import pytest

from repro.core.belt import Belt
from repro.core.config import BeltSpec
from repro.core.order import restamp
from repro.core.reserve import SLACK_FRAMES, required_reserve_frames
from repro.heap import AddressSpace


@pytest.fixture
def space():
    return AddressSpace(heap_frames=32, frame_shift=8)


def belt_with(space, index, pct, fill_frames):
    """A belt with one increment occupying ``fill_frames`` frames."""
    belt = Belt(index, BeltSpec(pct), space, space.heap_frames)
    if fill_frames:
        inc = belt.open_increment()
        for _ in range(fill_frames):
            inc.add_frame()
            inc.alloc(space.frame_words)
    return belt


# ----------------------------------------------------------------------
# restamp
# ----------------------------------------------------------------------
def test_restamp_orders_belts_bottom_up(space):
    b0 = belt_with(space, 0, 100, 2)
    b1 = belt_with(space, 1, 100, 3)
    count = restamp(space, [b0, b1])
    assert count == 2
    assert b0.increments[0].stamp < b1.increments[0].stamp
    for frame in b0.increments[0].region.frames:
        assert frame.collect_order == b0.increments[0].stamp


def test_restamp_fifo_within_belt(space):
    belt = Belt(0, BeltSpec(25), space, space.heap_frames)
    old = belt.open_increment()
    old.add_frame()
    old.alloc(4)
    young = belt.open_increment()
    young.add_frame()
    young.alloc(4)
    restamp(space, [belt])
    assert old.stamp < young.stamp


def test_restamp_shared_stamp_across_increment_frames(space):
    belt = Belt(0, BeltSpec(50), space, space.heap_frames)
    inc = belt.open_increment()
    inc.add_frame()
    inc.add_frame()
    restamp(space, [belt])
    orders = {frame.collect_order for frame in inc.region.frames}
    assert len(orders) == 1


# ----------------------------------------------------------------------
# reserve
# ----------------------------------------------------------------------
def target_next(top):
    return lambda b: min(b + 1, top)


def test_semispace_reserve_equals_occupancy(space):
    b0 = belt_with(space, 0, 100, 6)
    reserve = required_reserve_frames([b0], target_next(0), b0.increments[0])
    assert reserve == 6 + SLACK_FRAMES


def test_appel_reserve_is_old_plus_nursery(space):
    nursery = belt_with(space, 0, 100, 4)
    old = belt_with(space, 1, 100, 7)
    reserve = required_reserve_frames(
        [nursery, old], target_next(1), nursery.increments[0]
    )
    assert reserve == 7 + 4 + SLACK_FRAMES


def test_fixed_alloc_increment_anticipates_growth(space):
    """A bounded nursery is counted at its max size, not current occupancy."""
    nursery = belt_with(space, 0, 25, 1)  # max = 32*25/125 = 6 frames
    old = belt_with(space, 1, 100, 5)
    alloc_inc = nursery.increments[0]
    assert alloc_inc.max_frames == 6
    reserve = required_reserve_frames([nursery, old], target_next(1), alloc_inc)
    assert reserve == 5 + 6 + SLACK_FRAMES


def test_fixed_belt_potential_capped_at_increment_size(space):
    """Overflow into fresh increments bounds any one increment's future
    occupancy by the belt's increment size (X.X's small-reserve advantage)."""
    b0 = belt_with(space, 0, 25, 6)  # increment size 6
    b1 = belt_with(space, 1, 25, 6)
    b1_young = b1.open_increment()
    b1_young.add_frame()
    b1_young.alloc(4)
    # b1's youngest potential = min(1 + 6, 6) = 6, not 7.
    reserve = required_reserve_frames([b0, b1], lambda b: 1, b0.increments[0])
    assert reserve == 6 + SLACK_FRAMES


def test_growable_receiver_uncapped(space):
    b0 = belt_with(space, 0, 25, 6)
    b2 = belt_with(space, 1, 100, 10)  # the X.X.100 third belt, index 1 here
    reserve = required_reserve_frames([b0, b2], lambda b: 1, b0.increments[0])
    # third belt potential = 10 + 6; reserve grows as the belt fills (§3.3.4)
    assert reserve == 16 + SLACK_FRAMES


def test_empty_heap_zero_reserve(space):
    b0 = Belt(0, BeltSpec(100), space, space.heap_frames)
    assert required_reserve_frames([b0], target_next(0), None) == 0


def test_reserve_falls_after_collection(space):
    """§3.3.4: 'the copy reserve automatically falls back to a smaller
    size' once the big increment is gone."""
    b0 = belt_with(space, 0, 25, 2)
    b1 = belt_with(space, 1, 100, 12)
    before = required_reserve_frames([b0, b1], target_next(1), b0.increments[0])
    big = b1.increments[0]
    for frame in list(big.region.frames):
        space.release_frame(frame)
    b1.remove(big)
    after = required_reserve_frames([b0, b1], target_next(1), b0.increments[0])
    assert after < before
