"""Tests for collection triggers, configuration variants and ablations.

Covers the parts of §3.3.3 beyond the default nursery trigger: the remset
trigger, the time-to-die trigger (two nursery increments), asymmetric
X.Y configurations, and the ablation flags (fixed half-heap reserve,
collect-together disabled).
"""

import pytest

from repro.core import BeltwayConfig
from repro.errors import OutOfMemory
from repro.runtime import VM, MutatorContext


def make_vm(config, frames=96, **kwargs):
    vm = VM(heap_bytes=frames * 256, collector=config, debug_verify=True, **kwargs)
    vm.define_type("node", nrefs=2, nscalars=1)
    return vm, MutatorContext(vm)


def churn(vm, mu, n, survive_every=0, window=0):
    node = vm.types.by_name("node")
    keep = []
    for i in range(n):
        h = mu.alloc(node)
        if survive_every and i % survive_every == 0:
            keep.append(h)
            if window and len(keep) > window:
                keep.pop(0).drop()
        else:
            h.drop()
    return keep


# ----------------------------------------------------------------------
# Remset trigger
# ----------------------------------------------------------------------
def test_remset_trigger_fires():
    config = BeltwayConfig.parse("25.25.100").with_remset_trigger(40)
    vm, mu = make_vm(config)
    node = vm.types.by_name("node")
    # a population of old objects (remsets deduplicate per slot, so the
    # entries must come from many distinct slots)
    olds = [mu.alloc(node) for _ in range(60)]
    churn(vm, mu, 800)  # age them
    for i in range(600):
        young = mu.alloc(node)
        mu.write(olds[i % len(olds)], i % 2, young)
        young.drop()
    reasons = {r.reason for r in vm.plan.collections}
    assert "remset" in reasons
    vm.plan.verify()


def test_remset_trigger_name():
    config = BeltwayConfig.parse("25.25").with_remset_trigger(100)
    assert config.remset_trigger_entries == 100
    assert "rs100" in config.name


def test_no_remset_trigger_by_default():
    vm, mu = make_vm("25.25.100")
    churn(vm, mu, 2000, survive_every=10, window=40)
    assert all(r.reason != "remset" for r in vm.plan.collections)


# ----------------------------------------------------------------------
# Time-to-die trigger
# ----------------------------------------------------------------------
def test_ttd_config_construction():
    config = BeltwayConfig.parse("25.25.100").with_time_to_die(2048)
    assert config.time_to_die_bytes == 2048
    assert config.belts[0].max_increments >= 2
    assert "ttd2048" in config.name


def test_ttd_opens_second_nursery_increment():
    config = BeltwayConfig.parse("25.25.100").with_time_to_die(4 * 1024)
    vm, mu = make_vm(config, frames=64)
    churn(vm, mu, 4000, survive_every=15, window=40)
    # at some point the nursery belt must have held two increments
    nursery_multi = any(
        r.reason in ("full", "remset") for r in vm.plan.collections
    )
    assert vm.plan.collections
    vm.plan.verify()


def test_ttd_spares_youngest_objects():
    """Objects allocated within the TTD window survive the collection that
    would otherwise have taken them (they are in the second increment)."""
    ttd = 3 * 1024
    config = BeltwayConfig.parse("25.25.100").with_time_to_die(ttd)
    vm, mu = make_vm(config, frames=64)
    node = vm.types.by_name("node")
    baseline_gcs = 0
    survived_young = 0
    for round_ in range(500):
        h = mu.alloc(node)
        before = len(vm.plan.collections)
        for _ in range(3):
            mu.alloc(node).drop()
        if len(vm.plan.collections) > before and not h.is_null:
            survived_young += 1
        h.drop()
    vm.plan.verify()
    assert len(vm.plan.collections) > 0


# ----------------------------------------------------------------------
# Asymmetric X.Y configurations
# ----------------------------------------------------------------------
@pytest.mark.parametrize("config", ["10.50", "50.10", "10.25.100", "33.66"])
def test_asymmetric_configs_run(config):
    vm, mu = make_vm(config, frames=96)
    keep = churn(vm, mu, 3000, survive_every=12, window=60)
    assert vm.plan.collections
    vm.plan.verify()


def test_asymmetric_increment_sizes_differ():
    vm, _ = make_vm("10.50")
    frames_b0 = vm.plan.belts[0].increment_frames
    frames_b1 = vm.plan.belts[1].increment_frames
    assert frames_b0 < frames_b1


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------
def test_fixed_half_reserve_reduces_capacity():
    """The dynamic conservative reserve lets incremental configurations
    use more of the heap: with the classic half-heap reserve the same
    workload needs a larger heap."""
    import dataclasses

    dynamic = BeltwayConfig.parse("25.25")
    fixed = dataclasses.replace(
        dynamic, name="25.25-halfres", fixed_half_reserve=True
    )

    def min_frames(config):
        for frames in range(12, 200, 2):
            vm, mu = make_vm(config, frames=frames)
            try:
                churn(vm, mu, 2500, survive_every=10, window=80)
                return frames
            except OutOfMemory:
                continue
        raise AssertionError("no heap size worked")

    assert min_frames(dynamic) < min_frames(fixed)


def test_combine_disabled_still_correct():
    import dataclasses

    config = dataclasses.replace(
        BeltwayConfig.parse("Appel"), name="Appel-nocombine", enable_combine=False
    )
    vm, mu = make_vm(config, frames=96)
    keep = churn(vm, mu, 4000, survive_every=8, window=120)
    vm.plan.verify()
    # escalation alone must still reach the old belt
    assert any(1 in r.belts_collected for r in vm.plan.collections)


def test_combine_batches_when_old_belt_is_half_the_heap():
    """When the receiver belt has reached half the heap and the nursery is
    non-empty, the scheduler batches them into one full-heap collection
    (the paper's collect-together optimisation).  White-box: the belt
    state is fabricated directly."""
    vm, _ = make_vm("Appel", frames=64)
    heap = vm.plan
    old_inc = heap.open_increment(heap.belts[1])
    for _ in range(33):  # past half of the 64-frame heap
        old_inc.add_frame()
        old_inc.alloc(60)
    nursery_inc = heap.open_increment(heap.belts[0])
    nursery_inc.add_frame()
    nursery_inc.alloc(10)
    heap.restamp()
    batch = heap.policy.choose_collection(heap)
    belts = {inc.belt.index for inc in batch}
    assert belts == {0, 1}, f"expected a combined batch, got belts {belts}"


def test_no_combine_when_old_belt_small():
    vm, _ = make_vm("Appel", frames=64)
    heap = vm.plan
    old_inc = heap.open_increment(heap.belts[1])
    for _ in range(8):
        old_inc.add_frame()
        old_inc.alloc(60)
    nursery_inc = heap.open_increment(heap.belts[0])
    nursery_inc.add_frame()
    nursery_inc.alloc(10)
    heap.restamp()
    batch = heap.policy.choose_collection(heap)
    assert {inc.belt.index for inc in batch} == {0}


# ----------------------------------------------------------------------
# Boot ballast
# ----------------------------------------------------------------------
def test_boot_ballast_scanned_by_gctk_only():
    vm_g, mu_g = make_vm("gctk:Appel", frames=64)
    churn(vm_g, mu_g, 1200)
    assert vm_g.plan.collections
    assert all(r.boot_slots_scanned > 1000 for r in vm_g.plan.collections)

    vm_b, mu_b = make_vm("Appel", frames=64)
    churn(vm_b, mu_b, 1200)
    assert vm_b.plan.collections
    assert all(r.boot_slots_scanned == 0 for r in vm_b.plan.collections)


def test_boot_ballast_size_configurable():
    vm0 = VM(heap_bytes=16 * 1024, collector="BSS", boot_ballast_slots=0)
    vm1 = VM(heap_bytes=16 * 1024, collector="BSS", boot_ballast_slots=800)
    assert vm1.space.boot_frames_in_use > vm0.space.boot_frames_in_use
