"""Tests for the Mature Object Space (train algorithm) top belt.

The paper's future-work extension (§3.2, §5): replace the X.X.100 third
belt with a complete *incremental* collector.  These tests check the
train mechanics (cars, promotion routing, FIFO collection), the
completeness payoff (whole-train reclamation of cross-increment cycles
without any full-heap collection), and the bounded worst case (no
collection batch ever exceeds one car plus the lower-belt increments).
"""

import pytest

from repro.core.config import BeltwayConfig
from repro.core.mos import MOSPolicy, Train
from repro.runtime import VM, MutatorContext


def make_vm(frames=96, config="25.25.MOS", **kwargs):
    vm = VM(heap_bytes=frames * 256, collector=config, debug_verify=True, **kwargs)
    vm.define_type("node", nrefs=2, nscalars=1)
    return vm, MutatorContext(vm)


def churn(vm, mu, n):
    node = vm.types.by_name("node")
    for _ in range(n):
        mu.alloc(node).drop()


def age_into_mature(vm, mu, handles, spin=12000):
    """Drive allocation with medium-lived survivors so belt 1 keeps
    filling and being collected, pushing `handles` into the MOS belt."""
    node = vm.types.by_name("node")
    policy = vm.plan.policy
    window = []
    for i in range(spin):
        h = mu.alloc(node)
        if i % 5 == 0:
            window.append(h)
            if len(window) > 60:
                window.pop(0).drop()
        else:
            h.drop()
        if policy.trains and all(
            _in_mature(vm, h.addr) for h in handles if not h.is_null
        ):
            for w in window:
                w.drop()
            return True
    for w in window:
        w.drop()
    return False


def _in_mature(vm, addr):
    frame = vm.space.frame_containing(addr)
    inc = frame.increment
    return inc is not None and inc.belt.index == vm.plan.config.top_belt


# ----------------------------------------------------------------------
# Configuration & structure
# ----------------------------------------------------------------------
def test_mos_config_parses():
    cfg = BeltwayConfig.parse("25.25.MOS")
    assert cfg.mos_top_belt
    assert cfg.is_complete
    assert len(cfg.belts) == 3
    assert not cfg.belts[2].growable  # cars are bounded


def test_mos_policy_selected():
    vm, _ = make_vm()
    assert isinstance(vm.plan.policy, MOSPolicy)
    assert vm.plan.policy.manages_belt(2)
    assert not vm.plan.policy.manages_belt(1)


def test_long_lived_objects_reach_trains():
    vm, mu = make_vm(frames=64)
    node = vm.types.by_name("node")
    elders = [mu.alloc(node) for _ in range(40)]
    for i, h in enumerate(elders):
        mu.write_int(h, 0, i)
    assert age_into_mature(vm, mu, elders), "objects never reached the trains"
    policy = vm.plan.policy
    assert policy.trains
    assert all(train.cars for train in policy.trains)
    # data still intact after the journey through three belts
    for i, h in enumerate(elders):
        assert mu.read_int(h, 0) == i
    vm.plan.verify()


def test_cars_are_bounded_and_ordered():
    vm, mu = make_vm(frames=64)
    node = vm.types.by_name("node")
    elders = [mu.alloc(node) for _ in range(60)]
    age_into_mature(vm, mu, elders, spin=20000)
    policy = vm.plan.policy
    belt = vm.plan.belts[2]
    # the belt's deque mirrors the flattened (train, car) order
    flattened = [car for train in policy.trains for car in train.cars]
    assert list(belt.increments) == flattened
    # stamps strictly increase in that order
    stamps = [car.stamp for car in flattened]
    assert stamps == sorted(stamps)
    # no car exceeds the belt's increment size
    cap = belt.increment_frames
    assert all(car.num_frames <= cap for car in flattened)


def test_mos_collections_never_full_heap():
    """The extension's contract: completeness *without* full-heap
    collections — no batch ever contains more than one mature car."""
    vm, mu = make_vm(frames=64)
    node = vm.types.by_name("node")
    keep = []
    for i in range(30000):
        h = mu.alloc(node)
        if i % 6 == 0:
            keep.append(h)
            if len(keep) > 120:
                keep.pop(0).drop()
        else:
            h.drop()
    mature_batches = [
        r for r in vm.plan.collections if 2 in r.belts_collected
    ]
    copying = [r for r in mature_batches if r.reason != "train-reclaim"]
    for r in copying:
        assert r.increments_collected <= 1 + 2, r  # one car (+ cascade slack)
    assert not any(r.was_full_heap for r in vm.plan.collections)
    vm.plan.verify()


# ----------------------------------------------------------------------
# Completeness: cross-increment cycles
# ----------------------------------------------------------------------
def test_whole_train_reclaimed_when_garbage():
    """A dead cycle *larger than one car* can never die at a single car
    collection — its members are always externally referenced from the
    sibling cars.  Only the whole-train check reclaims it: the signature
    capability of the train algorithm."""
    vm, mu = make_vm(frames=64)
    node = vm.types.by_name("node")
    # One big ring, bigger than a car (car = 12 frames = 128 six-word
    # nodes at this heap size).
    ring = [mu.alloc(node) for _ in range(200)]
    for i, h in enumerate(ring):
        mu.write(h, 0, ring[(i + 1) % 200])
    # every member must reach the mature space (the ring spans >= 2 cars)
    assert age_into_mature(vm, mu, ring, spin=40000)
    for h in ring:
        h.drop()
    # Keep allocating *with survivors* (memory pressure is what escalates
    # collection to the mature belt): the dead trains must eventually be
    # reclaimed wholesale, and allocation must never fail.
    policy = vm.plan.policy
    node = vm.types.by_name("node")
    window = []
    for i in range(40000):
        h = mu.alloc(node)
        if i % 5 == 0:
            window.append(h)
            if len(window) > 80:
                window.pop(0).drop()
        else:
            h.drop()
        if policy.trains_reclaimed:
            break
    assert policy.trains_reclaimed >= 1, "no garbage train was ever reclaimed"
    reclaims = [
        r for r in vm.plan.collections if r.reason == "train-reclaim"
    ]
    assert reclaims
    assert all(r.copied_words == 0 for r in reclaims)  # copy-free
    vm.plan.verify()


def test_mos_reclaims_cross_increment_cycles():
    """The javac pathology under X.X — reclaimed by X.X.MOS without any
    full-heap collection."""
    vm, mu = make_vm(frames=72)
    node = vm.types.by_name("node")
    pending = None
    for generation in range(40):
        ring = [mu.alloc(node) for _ in range(4)]
        for i, h in enumerate(ring):
            mu.write(h, 0, ring[(i + 1) % 4])
        if pending is not None:
            mu.write(ring[0], 1, pending)
            mu.write(pending, 1, ring[0])
            pending.drop()
            pending = None
        else:
            pending = mu.copy_handle(ring[0])
        for h in ring:
            h.drop()
        churn(vm, mu, 500)
    if pending is not None:
        pending.drop()
    # long churn: the cycles must not accumulate without bound
    churn(vm, mu, 30000)
    reachable = vm.plan.verify()
    retained = vm.plan.live_words_upper_bound
    # At least the bulk of the ~40 rings (5120 bytes of nodes) must have
    # been reclaimed; the occupancy above reachable is working garbage,
    # not an ever-growing cycle graveyard.
    assert retained - reachable.words < 3000, (
        f"occupancy {retained}w vs reachable {reachable.words}w: "
        "cross-increment cycles appear to be retained"
    )
    assert not any(r.was_full_heap for r in vm.plan.collections)
    vm.plan.verify()


def test_cycle_members_migrate_to_one_train():
    """Collecting a car moves survivors referenced from another train into
    that train — the clustering rule that makes trains complete."""
    vm, mu = make_vm(frames=96)
    node = vm.types.by_name("node")
    a = mu.alloc(node)
    b = mu.alloc(node)
    mu.write(a, 0, b)
    mu.write(b, 0, a)
    assert age_into_mature(vm, mu, [a, b], spin=25000)
    policy = vm.plan.policy

    def trains_of(handles):
        shift = vm.space.frame_shift
        found = set()
        for h in handles:
            train = policy._train_of(vm.plan, h.addr >> shift)
            found.add(None if train is None else train.id)
        return found

    # drive mature collections until both ends sit in one train
    for _ in range(40000):
        mu.alloc(node).drop()
        if len(trains_of([a, b])) == 1 and None not in trains_of([a, b]):
            break
    assert len(trains_of([a, b])) == 1
    assert mu.read_addr(b, 0) == a.addr
    vm.plan.verify()


# ----------------------------------------------------------------------
# Train unit behaviour
# ----------------------------------------------------------------------
def test_train_ids_monotonic():
    t1, t2 = Train(), Train()
    assert t2.id > t1.id
    assert t1.num_frames == 0
    assert t1.frame_indices() == set()


def test_empty_trains_pruned():
    vm, mu = make_vm(frames=64)
    node = vm.types.by_name("node")
    elders = [mu.alloc(node) for _ in range(30)]
    age_into_mature(vm, mu, elders, spin=20000)
    policy = vm.plan.policy
    assert all(train.cars for train in policy.trains)
