"""Property-based tests for configuration parsing and sizing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import BeltSpec, BeltwayConfig
from repro.errors import ConfigError

pcts = st.integers(min_value=1, max_value=100)


@given(st.lists(pcts, min_size=2, max_size=4))
@settings(max_examples=80, deadline=None)
def test_numeric_configs_roundtrip(values):
    text = ".".join(str(v) for v in values)
    config = BeltwayConfig.parse(text)
    assert [b.increment_pct for b in config.belts] == values
    assert config.name == text
    # the nursery gets the single-increment bound (the nursery trigger)
    assert config.belts[0].max_increments == 1
    # re-parsing the name reproduces the configuration
    again = BeltwayConfig.parse(config.name)
    assert again.belts == config.belts


@given(pcts, st.integers(min_value=4, max_value=4096))
@settings(max_examples=100, deadline=None)
def test_increment_frames_bounds(pct, heap_frames):
    spec = BeltSpec(pct)
    frames = spec.increment_frames(heap_frames)
    if pct >= 100:
        assert frames is None
        return
    assert 1 <= frames
    # an X%-of-usable increment can never exceed X/(100+X) of the heap
    assert frames <= max(1, heap_frames * pct // (100 + pct))


@given(pcts, st.integers(min_value=8, max_value=2048))
@settings(max_examples=80, deadline=None)
def test_increment_frames_monotone_in_heap(pct, heap_frames):
    if pct >= 100:
        return
    spec = BeltSpec(pct)
    small = spec.increment_frames(heap_frames)
    large = spec.increment_frames(heap_frames * 2)
    assert large >= small


@given(st.integers(min_value=1, max_value=99), st.integers(min_value=8, max_value=512))
@settings(max_examples=80, deadline=None)
def test_bigger_percentage_never_smaller_increment(pct, heap_frames):
    smaller = BeltSpec(pct).increment_frames(heap_frames)
    bigger = BeltSpec(min(99, pct + 10)).increment_frames(heap_frames)
    assert bigger >= smaller


@given(st.text(max_size=10))
@settings(max_examples=100, deadline=None)
def test_parse_never_crashes_unexpectedly(text):
    """parse() either returns a config or raises ConfigError — nothing
    else, for any input."""
    try:
        config = BeltwayConfig.parse(text)
    except ConfigError:
        return
    assert config.belts


def test_mos_variants_roundtrip():
    for text in ("25.25.MOS", "10.50.mos"):
        config = BeltwayConfig.parse(text)
        assert config.mos_top_belt
        assert len(config.belts) == 3
        assert config.is_complete
