"""Edge-case tests for the compiled mutator store paths (ISSUE 2).

The compiled ``write_ref_field`` / ``init_object`` closures
(:mod:`repro.core.barrier`, :mod:`repro.gctk.ssb`) must behave exactly
like the layered reference path (``ObjectModel.ref_slot_addr`` +
``FrameBarrier.write_ref``): identical stores, identical counter
accounting, identical errors.  These tests pin the edge cases down
through real VMs so the compiled closures decode real object headers.
"""

import random

import pytest

from repro.errors import HeapCorruption
from repro.runtime.mutator import MutatorContext
from repro.runtime.vm import VM


def make_vm(collector="25.25.100", heap_kb=16):
    vm = VM(heap_kb * 1024, collector=collector)
    vm.define_type("node", nrefs=3, nscalars=2)
    return vm


def boot_code_objects(vm):
    """Boot-image ballast objects (8 ref slots each), allocation order."""
    desc = vm.types.by_name("<boot-code>")
    return [o for o in vm.boot.iter_objects() if vm.model.type_of(o) is desc]


# ----------------------------------------------------------------------
# Beltway compiled store path
# ----------------------------------------------------------------------

def test_compiled_null_store_counted_not_compared():
    vm = make_vm()
    mu = MutatorContext(vm)
    h = mu.alloc(vm.types.by_name("node"))
    stats = vm.plan.barrier.stats
    fast0, null0, slow0 = stats.fast_path, stats.null_stores, stats.slow_path
    inserts0 = vm.plan.remsets.inserts
    mu.write(h, 0, None)
    assert stats.fast_path == fast0 + 1
    assert stats.null_stores == null0 + 1
    assert stats.slow_path == slow0  # NULL filtered before the order compare
    assert vm.plan.remsets.inserts == inserts0
    assert mu.read_addr(h, 0) == 0  # the store itself still happens


def test_compiled_same_frame_store_never_inserted():
    vm = make_vm()
    mu = MutatorContext(vm)
    a = mu.alloc(vm.types.by_name("node"))
    b = mu.alloc(vm.types.by_name("node"))
    shift = vm.space.frame_shift
    assert a.addr >> shift == b.addr >> shift  # both fit in the first frame
    stats = vm.plan.barrier.stats
    slow0 = stats.slow_path
    inserts0 = vm.plan.remsets.inserts
    mu.write(a, 1, b)
    assert stats.slow_path == slow0
    assert vm.plan.remsets.inserts == inserts0
    assert mu.read_addr(a, 1) == b.addr


def test_compiled_boot_order_is_infinite_both_directions():
    """heap→boot is never remembered; boot→heap always is (Fig. 4 with
    BOOT_ORDER = ∞)."""
    vm = make_vm()
    mu = MutatorContext(vm)
    a = mu.alloc(vm.types.by_name("node"))
    boot_obj = boot_code_objects(vm)[0]
    stats = vm.plan.barrier.stats
    rs = vm.plan.remsets

    slow0, inserts0 = stats.slow_path, rs.inserts
    vm.write_ref(a.addr, 0, boot_obj)  # heap -> boot
    assert stats.slow_path == slow0
    assert rs.inserts == inserts0
    assert mu.read_addr(a, 0) == boot_obj

    vm.write_ref(boot_obj, 1, a.addr)  # boot -> heap
    assert stats.slow_path == slow0 + 1
    assert rs.inserts == inserts0 + 1
    shift = vm.space.frame_shift
    slot_addr = boot_obj + (1 + 3) * 4  # header is 3 words
    assert slot_addr in rs.entries_for_pair(boot_obj >> shift, a.addr >> shift)


def test_compiled_duplicate_insert_accounting():
    """Re-storing the same boot slot reaches the SSB twice; cumulative
    dedup counters must match the eager-dict behaviour."""
    vm = make_vm()
    mu = MutatorContext(vm)
    a = mu.alloc(vm.types.by_name("node"))
    b = mu.alloc(vm.types.by_name("node"))
    assert a.addr >> vm.space.frame_shift == b.addr >> vm.space.frame_shift
    boot_obj = boot_code_objects(vm)[0]
    rs = vm.plan.remsets
    inserts0, dups0, entries0 = rs.inserts, rs.duplicate_inserts, len(rs)
    vm.write_ref(boot_obj, 2, a.addr)
    vm.write_ref(boot_obj, 2, b.addr)  # same slot, same (src, tgt) pair
    assert rs.inserts == inserts0 + 2
    assert rs.duplicate_inserts == dups0 + 1
    assert len(rs) == entries0 + 1


def test_compiled_alloc_tib_store_filtered_by_order_compare():
    """Allocation's type-slot store is barrier traffic (§3.3.2) but the
    order compare filters it: type objects live in infinite-order boot
    frames."""
    vm = make_vm()
    mu = MutatorContext(vm)
    stats = vm.plan.barrier.stats
    fast0, slow0, null0 = stats.fast_path, stats.slow_path, stats.null_stores
    mu.alloc(vm.types.by_name("node"))
    assert stats.fast_path == fast0 + 1
    assert stats.slow_path == slow0
    assert stats.null_stores == null0


def test_compiled_bounds_error_matches_reference():
    vm = make_vm()
    mu = MutatorContext(vm)
    a = mu.alloc(vm.types.by_name("node"))
    with pytest.raises(HeapCorruption) as compiled:
        vm.write_ref(a.addr, 99, 0)
    with pytest.raises(HeapCorruption) as reference:
        vm.model.ref_slot_addr(a.addr, 99)
    assert str(compiled.value) == str(reference.value)


def test_compiled_store_matches_layered_reference_accounting():
    """Twin VMs, identical store sequence: one through the compiled inner
    loop, one through ``ref_slot_addr`` + ``FrameBarrier.write_ref``.
    Heap contents and every counter the fast path bypasses layers for
    must come out bit-identical."""

    def build():
        vm = make_vm(heap_kb=16)
        mu = MutatorContext(vm)
        node = vm.types.by_name("node")
        handles = [mu.alloc(node) for _ in range(40)]
        boots = boot_code_objects(vm)[:2]
        return vm, handles, boots

    vm_a, ha, boots_a = build()
    vm_b, hb, boots_b = build()
    assert [h.addr for h in ha] == [h.addr for h in hb]
    assert boots_a == boots_b

    rng = random.Random(7)
    ops = []
    for _ in range(300):
        if rng.random() < 0.25:  # boot -> heap: exercises remset inserts
            ops.append(("boot", rng.randrange(2), rng.randrange(8), rng.randrange(41)))
        else:
            ops.append(("heap", rng.randrange(40), rng.randrange(3), rng.randrange(41)))

    for kind, i, slot, j in ops:
        src_a = boots_a[i] if kind == "boot" else ha[i].addr
        tgt_a = 0 if j == 40 else ha[j].addr
        vm_a.write_ref(src_a, slot, tgt_a)  # compiled inner loop

        src_b = boots_b[i] if kind == "boot" else hb[i].addr
        tgt_b = 0 if j == 40 else hb[j].addr
        slot_addr = vm_b.model.ref_slot_addr(src_b, slot)  # layered path
        vm_b.plan.barrier.write_ref(src_b, slot_addr, tgt_b)

    assert vm_a.space.load_count == vm_b.space.load_count
    assert vm_a.space.store_count == vm_b.space.store_count
    sa, sb = vm_a.plan.barrier.stats, vm_b.plan.barrier.stats
    assert (sa.fast_path, sa.slow_path, sa.null_stores) == (
        sb.fast_path, sb.slow_path, sb.null_stores
    )
    ra, rb = vm_a.plan.remsets, vm_b.plan.remsets
    assert ra.inserts == rb.inserts
    assert ra.duplicate_inserts == rb.duplicate_inserts
    assert sorted(ra.pairs()) == sorted(rb.pairs())
    for pair in ra.pairs():
        assert ra.entries_for_pair(*pair) == rb.entries_for_pair(*pair)
    for fa, fb in zip(vm_a.space._frames, vm_b.space._frames):
        if fa is not None and fb is not None:
            assert fa.words == fb.words


# ----------------------------------------------------------------------
# gctk compiled boundary path
# ----------------------------------------------------------------------

def test_gctk_compiled_boundary_barrier_and_ssb_duplicates():
    """Old→young stores append to the SSB *without* dedup; young→old and
    NULL stores are never recorded (address-order boundary barrier)."""
    vm = make_vm(collector="gctk:Appel")
    mu = MutatorContext(vm)
    node = vm.types.by_name("node")
    old = mu.alloc(node)
    vm.collect()  # survivor is copied out of the nursery
    barrier = vm.plan.barrier
    assert old.addr >> vm.space.frame_shift not in barrier.nursery_frames

    young = mu.alloc(node)
    assert young.addr >> vm.space.frame_shift in barrier.nursery_frames
    ssb = vm.plan.ssb
    stats = barrier.stats
    inserts0, slow0, null0 = ssb.inserts, stats.slow_path, stats.null_stores

    mu.write(old, 0, young)
    mu.write(old, 0, young)  # same slot again: SSBs keep duplicates
    assert ssb.inserts == inserts0 + 2
    assert stats.slow_path == slow0 + 2
    assert len(ssb) == ssb.total_entries

    mu.write(young, 0, old)  # young -> old: not recorded
    mu.write(old, 1, None)  # NULL: counted, not compared
    assert ssb.inserts == inserts0 + 2
    assert stats.slow_path == slow0 + 2
    assert stats.null_stores == null0 + 1
    assert mu.read_addr(old, 0) == young.addr
    assert mu.read_addr(old, 1) == 0
