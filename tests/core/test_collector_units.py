"""Focused collector-pass tests: counters, batching, remset lifecycle."""

import pytest

from repro.errors import HeapCorruption
from repro.runtime import VM, MutatorContext


def make_vm(config="25.25.100", frames=96):
    vm = VM(
        heap_bytes=frames * 256,
        collector=config,
        debug_verify=True,
        boot_ballast_slots=0,
    )
    vm.define_type("node", nrefs=2, nscalars=1)
    return vm, MutatorContext(vm)


def test_collect_empty_batch_rejected():
    from repro.core.collector import Collector

    vm, mu = make_vm()
    with pytest.raises(HeapCorruption):
        Collector(vm.plan).collect([], "test")


def test_result_counters_consistent():
    vm, mu = make_vm()
    node = vm.types.by_name("node")
    keep = [mu.alloc(node) for _ in range(20)]
    result = vm.plan.collect("forced")
    assert result.copied_objects >= 20
    assert result.copied_words >= 20 * node.size_words()
    assert result.from_words >= result.copied_words  # can't copy more than was there
    assert result.freed_frames == result.from_frames
    assert result.scanned_objects == result.copied_objects
    # every copied object's slots were scanned (type slot + 2 refs)
    assert result.scanned_ref_slots == 3 * result.scanned_objects
    assert 0.0 <= result.survival_rate <= 1.0


def test_collection_updates_root_array_in_place():
    vm, mu = make_vm()
    node = vm.types.by_name("node")
    h = mu.alloc(node)
    array = mu.table.slots
    index = [i for i, v in enumerate(array) if v == h.addr][0]
    before = array[index]
    vm.plan.collect("forced")
    assert array[index] != before
    assert array[index] == h.addr


def test_remsets_dropped_for_collected_frames():
    vm, mu = make_vm()
    node = vm.types.by_name("node")
    olds = [mu.alloc(node) for _ in range(30)]
    vm.plan.collect("forced")  # promote them
    # create old->young pointers
    for i, old in enumerate(olds):
        young = mu.alloc(node)
        mu.write(old, 0, young)
        young.drop()
    assert len(vm.plan.remsets) > 0
    # collect the nursery: remsets targeting it must be re-pointed/dropped
    vm.plan.collect("forced")
    remaining_pairs = list(vm.plan.remsets.pairs())
    live_frames = {
        frame.index
        for belt in vm.plan.belts
        for inc in belt.increments
        for frame in inc.region.frames
    }
    for src, tgt in remaining_pairs:
        assert tgt in live_frames  # no pair targets a released frame


def test_forwarding_converges_for_shared_targets():
    vm, mu = make_vm()
    node = vm.types.by_name("node")
    shared = mu.alloc(node)
    holders = [mu.alloc(node) for _ in range(8)]
    for h in holders:
        mu.write(h, 0, shared)
    result = vm.plan.collect("forced")
    addresses = {mu.read_addr(h, 0) for h in holders}
    assert addresses == {shared.addr}


def test_batch_collection_ignores_internal_remsets():
    """Remsets between increments collected together are not processed as
    roots (the §3.3.2 optimisation) — observable through the remset_slots
    counter of a full-heap (combined) collection."""
    vm, mu = make_vm("Appel", frames=48)
    node = vm.types.by_name("node")
    keep = []
    combined = None
    for i in range(8000):
        h = mu.alloc(node)
        if i % 4 == 0:
            keep.append(h)
            if keep and len(keep) > 100:
                keep.pop(0).drop()
            if len(keep) > 1:
                mu.write(keep[-2], 0, h)  # lots of cross-region pointers
        else:
            h.drop()
        for r in vm.plan.collections:
            if len(r.belts_collected) > 1:
                combined = r
        if combined:
            break
    if combined is None:
        pytest.skip("no combined collection on this workload")
    # the combined batch covers both belts, so almost no external remset
    # slots remain to process
    assert combined.remset_slots <= combined.copied_objects


def test_null_slots_cost_nothing_to_forward():
    vm, mu = make_vm()
    node = vm.types.by_name("node")
    keep = [mu.alloc(node) for _ in range(5)]  # all ref fields NULL
    result = vm.plan.collect("forced")
    assert result.copied_objects >= 5
    # scanning happened, but nothing needed forwarding beyond the keepers
    assert result.scanned_ref_slots >= 3 * 5


def test_collection_id_monotonic():
    vm, mu = make_vm()
    node = vm.types.by_name("node")
    for _ in range(1200):
        mu.alloc(node).drop()
    ids = [r.collection_id for r in vm.plan.collections if r.collection_id > 0]
    assert ids == sorted(ids)
    assert len(set(ids)) == len(ids)
