"""Unit tests for belts and increments."""

import pytest

from repro.core.belt import Belt
from repro.core.config import BeltSpec
from repro.errors import HeapCorruption
from repro.heap import AddressSpace


@pytest.fixture
def space():
    return AddressSpace(heap_frames=16, frame_shift=8)


def make_belt(space, pct=50, index=0):
    return Belt(index, BeltSpec(pct), space, space.heap_frames)


def test_open_increment_fifo(space):
    belt = make_belt(space)
    a = belt.open_increment()
    b = belt.open_increment()
    assert list(belt) == [a, b]
    assert belt.youngest() is b


def test_increment_alloc_and_growth(space):
    belt = make_belt(space, pct=50)  # 16*50/150 = 5 frames max
    inc = belt.open_increment()
    assert inc.max_frames == 5
    assert inc.alloc(4) == 0  # no frame yet
    inc.add_frame()
    addr = inc.alloc(4)
    assert addr != 0
    assert inc.occupancy_words == 4
    assert not inc.is_empty


def test_increment_at_max_size(space):
    belt = Belt(0, BeltSpec(10), space, space.heap_frames)  # 1 frame max
    inc = belt.open_increment()
    inc.add_frame()
    assert inc.at_max_size
    with pytest.raises(HeapCorruption):
        inc.add_frame()


def test_growable_increment_never_max(space):
    belt = make_belt(space, pct=100)
    inc = belt.open_increment()
    for _ in range(4):
        inc.add_frame()
    assert not inc.at_max_size


def test_frames_carry_increment_and_stamp(space):
    belt = make_belt(space)
    inc = belt.open_increment()
    inc.stamp = 7
    inc.add_frame()
    frame = inc.region.frames[0]
    assert frame.increment is inc
    assert frame.collect_order == 7
    assert space.orders[frame.index] == 7


def test_oldest_collectible_skips_empty(space):
    belt = make_belt(space)
    empty = belt.open_increment()
    full = belt.open_increment()
    full.add_frame()
    full.alloc(8)
    assert belt.oldest_collectible() is full
    empty.add_frame()
    assert belt.oldest_collectible() is full  # frame but no allocation


def test_remove(space):
    belt = make_belt(space)
    a = belt.open_increment()
    belt.remove(a)
    assert belt.num_increments == 0
    with pytest.raises(HeapCorruption):
        belt.remove(a)


def test_belt_aggregates(space):
    belt = make_belt(space)
    a = belt.open_increment()
    a.add_frame()
    a.alloc(10)
    b = belt.open_increment()
    b.add_frame()
    b.alloc(20)
    assert belt.occupancy_words == 30
    assert belt.num_frames == 2
    assert not belt.is_empty


def test_frame_indices(space):
    belt = make_belt(space)
    inc = belt.open_increment()
    inc.add_frame()
    inc.add_frame()
    indices = inc.frame_indices()
    assert len(indices) == 2
    assert all(isinstance(i, int) for i in indices)
