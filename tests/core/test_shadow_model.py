"""Property-based shadow-model testing of every collector configuration.

A plain Python object graph (the *shadow*) is maintained alongside the
simulated heap while hypothesis drives random mutator behaviour: allocate,
link, unlink, overwrite scalars, drop roots, force collections.  After the
sequence, the reachable heap must be *isomorphic* to the reachable shadow —
same shape, same types, same scalar payloads, with shared substructure
shared (one heap copy per shadow object).

Any barrier omission, forwarding bug, remset staleness or premature
reclamation shows up here as a divergence or a HeapCorruption.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import HeapCorruption, OutOfMemory
from repro.runtime import VM, MutatorContext

CONFIGS = [
    "BSS",
    "Appel",
    "100.100.100",
    "Fixed.25",
    "25.25",
    "25.25.100",
    "10.10",
    "BOF.25",
    "BOFM.25",
]

NREFS = 3


class Shadow:
    __slots__ = ("refs", "value")

    def __init__(self, value):
        self.refs = [None] * NREFS
        self.value = value


def op_strategy():
    return st.one_of(
        st.tuples(st.just("alloc"), st.integers(0, 1_000_000)),
        st.tuples(st.just("link"), st.integers(0, 63), st.integers(0, 63), st.integers(0, NREFS - 1)),
        st.tuples(st.just("unlink"), st.integers(0, 63), st.integers(0, NREFS - 1)),
        st.tuples(st.just("drop"), st.integers(0, 63)),
        st.tuples(st.just("setint"), st.integers(0, 63), st.integers(-1_000_000, 1_000_000)),
        st.tuples(st.just("churn"), st.integers(1, 20)),
    )


def check_isomorphic(vm, mu, pairs):
    """pairs: list of (Handle, Shadow|None); verify graph isomorphism."""
    model = vm.model
    seen = {}  # id(shadow) -> heap addr
    stack = []
    for handle, shadow in pairs:
        if shadow is None:
            assert handle.is_null, "heap root live where shadow is dead"
            continue
        assert not handle.is_null, "heap root null where shadow is live"
        stack.append((handle.addr, shadow))
    while stack:
        addr, shadow = stack.pop()
        if id(shadow) in seen:
            assert seen[id(shadow)] == addr, "shared shadow maps to two copies"
            continue
        seen[id(shadow)] = addr
        assert model.type_of(addr).name == "snode"
        assert model.get_scalar(addr, 0) == shadow.value & 0xFFFFFFFF
        for i in range(NREFS):
            child_addr = model.get_ref(addr, i)
            child_shadow = shadow.refs[i]
            if child_shadow is None:
                assert child_addr == 0, f"slot {i} live in heap, dead in shadow"
            else:
                assert child_addr != 0, f"slot {i} dead in heap, live in shadow"
                stack.append((child_addr, child_shadow))


@pytest.mark.parametrize("config", CONFIGS)
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(ops=st.lists(op_strategy(), max_size=120))
def test_heap_matches_shadow_model(config, ops):
    vm = VM(heap_bytes=96 * 256, collector=config, debug_verify=True)
    snode = vm.define_type("snode", nrefs=NREFS, nscalars=1)
    mu = MutatorContext(vm)
    roots = []  # list of (Handle, Shadow) — parallel representations
    counter = 0
    try:
        for op in ops:
            kind = op[0]
            if kind == "alloc":
                counter += 1
                value = op[1]
                h = mu.alloc(snode)
                mu.write_int(h, 0, value & 0xFFFFFFFF)
                roots.append((h, Shadow(value)))
                if len(roots) > 48:  # bound the live set below heap capacity
                    old_h, _ = roots.pop(0)
                    old_h.drop()
            elif kind == "link" and roots:
                _, a, b, slot = op
                ha, sa = roots[a % len(roots)]
                hb, sb = roots[b % len(roots)]
                mu.write(ha, slot, hb)
                sa.refs[slot] = sb
            elif kind == "unlink" and roots:
                _, a, slot = op
                ha, sa = roots[a % len(roots)]
                mu.write(ha, slot, None)
                sa.refs[slot] = None
            elif kind == "drop" and roots:
                h, _ = roots.pop(op[1] % len(roots))
                h.drop()
            elif kind == "setint" and roots:
                _, a, value = op
                ha, sa = roots[a % len(roots)]
                mu.write_int(ha, 0, value & 0xFFFFFFFF)
                sa.value = value
            elif kind == "churn":
                for _ in range(op[1]):
                    mu.alloc(snode).drop()
    except OutOfMemory:
        # Legitimate only if the live set genuinely outgrew this heap;
        # with <=48 roots of 7 words in 96 frames it must not happen.
        raise AssertionError("collector reported OOM on a fitting live set")
    check_isomorphic(vm, mu, roots)
    vm.plan.verify()


@pytest.mark.parametrize("config", CONFIGS)
def test_shadow_model_dense_cycles(config):
    """Deterministic dense-cycle stress: rings threaded through collections."""
    vm = VM(heap_bytes=96 * 256, collector=config, debug_verify=True)
    snode = vm.define_type("snode", nrefs=NREFS, nscalars=1)
    mu = MutatorContext(vm)
    rings = []
    for r in range(6):
        nodes = [mu.alloc(snode) for _ in range(5)]
        for i, h in enumerate(nodes):
            mu.write_int(h, 0, r * 100 + i)
            mu.write(h, 0, nodes[(i + 1) % 5])
            mu.write(h, 1, nodes[(i - 1) % 5])
        for h in nodes[1:]:
            h.drop()
        rings.append(nodes[0])
        for _ in range(300):
            mu.alloc(snode).drop()
    for r, entry in enumerate(rings):
        cursor = mu.copy_handle(entry)
        for i in range(5):
            assert mu.read_int(cursor, 0) == r * 100 + i
            nxt = mu.read(cursor, 0)
            cursor.drop()
            cursor = nxt
        assert cursor.addr == entry.addr
        cursor.drop()
    vm.plan.verify()
