"""Unit tests for promotion/scheduling policies via real BeltwayHeaps."""

import pytest

from repro.core import BeltwayConfig, make_policy
from repro.core.policy import (
    GenerationalPolicy,
    OlderFirstMixPolicy,
    OlderFirstPolicy,
)
from repro.runtime import VM, MutatorContext


def make_vm(config, frames=64):
    vm = VM(heap_bytes=frames * 256, collector=config, debug_verify=True)
    vm.define_type("node", nrefs=2, nscalars=1)
    return vm, MutatorContext(vm)


def churn(vm, mu, n, survive_every=0):
    """Allocate n nodes, keeping every ``survive_every``-th alive."""
    keep = []
    node = vm.types.by_name("node")
    for i in range(n):
        h = mu.alloc(node)
        if survive_every and i % survive_every == 0:
            keep.append(h)
        else:
            h.drop()
    return keep


def test_make_policy_dispatch():
    assert isinstance(
        make_policy(BeltwayConfig.parse("Appel")), GenerationalPolicy
    )
    assert isinstance(
        make_policy(BeltwayConfig.parse("BOFM.25")), OlderFirstMixPolicy
    )
    assert isinstance(
        make_policy(BeltwayConfig.parse("BOF.25")), OlderFirstPolicy
    )


def test_generational_targets():
    policy = make_policy(BeltwayConfig.parse("25.25.100"))
    assert policy.target_belt_index(0) == 1
    assert policy.target_belt_index(1) == 2
    assert policy.target_belt_index(2) == 2  # top belt copies to itself


def test_xx_top_belt_self_promotion():
    policy = make_policy(BeltwayConfig.parse("25.25"))
    assert policy.target_belt_index(1) == 1


def test_nursery_collection_promotes_to_belt_one():
    vm, mu = make_vm("25.25.100")
    keep = churn(vm, mu, 1500, survive_every=10)
    heap = vm.plan
    assert heap.collections, "expected at least one nursery collection"
    nursery_gcs = [r for r in heap.collections if r.belts_collected == (0,)]
    assert nursery_gcs
    assert heap.belts[1].occupancy_words > 0  # survivors promoted
    vm.plan.verify()


def test_bss_single_belt_flip():
    vm, mu = make_vm("BSS", frames=64)
    churn(vm, mu, 800, survive_every=10)
    heap = vm.plan
    assert all(r.belts_collected == (0,) for r in heap.collections)
    # after any collection there is exactly one non-empty region lineage
    assert len(heap.belts) == 1
    vm.plan.verify()


def test_bofm_mixes_copies_into_allocation_increment():
    vm, mu = make_vm("BOFM.25", frames=64)
    keep = churn(vm, mu, 1200, survive_every=4)
    heap = vm.plan
    assert heap.collections
    mixed = [inc for inc in heap.belts[0] if inc.copied_in_words > 0]
    assert mixed, "OFM must copy survivors into belt-0 increments"
    # survivors and fresh allocation share the allocation increment
    alloc_inc = heap.allocation_increment
    if alloc_inc is not None and alloc_inc.copied_in_words:
        assert alloc_inc.region.allocated_words > alloc_inc.copied_in_words
    vm.plan.verify()


def test_bof_flips_when_allocation_belt_empties():
    vm, mu = make_vm("BOF.25", frames=48)
    node = vm.types.by_name("node")
    keep = []
    for i in range(20000):
        h = mu.alloc(node)
        if i % 10 == 0:
            keep.append(h)
            if len(keep) > 50:  # bounded, rotating live set
                keep.pop(0).drop()
        else:
            h.drop()
    heap = vm.plan
    assert heap.flips >= 1, "BOF should have flipped its belts"
    vm.plan.verify()


def test_bof_collects_only_allocation_belt():
    vm, mu = make_vm("BOF.25", frames=48)
    churn(vm, mu, 2500, survive_every=25)
    heap = vm.plan
    # every collection targeted the belt playing A at that time; since we
    # cannot replay history, check the current C belt is never collected now
    c_index = 1 - heap.of_alloc_belt
    batch = heap.policy.choose_collection(heap)
    for inc in batch:
        assert inc.belt.index == heap.of_alloc_belt or heap.flips


def test_appel_full_heap_collection_via_combine_or_cascade():
    vm, mu = make_vm("Appel", frames=120)
    node = vm.types.by_name("node")
    keep = []
    for i in range(9000):
        h = mu.alloc(node)
        if i % 5 == 0:
            keep.append(h)
            if len(keep) > 150:  # rotation fills the old belt with garbage
                keep.pop(0).drop()
        else:
            h.drop()
    heap = vm.plan
    majors = [r for r in heap.collections if 1 in r.belts_collected]
    minors = [r for r in heap.collections if r.belts_collected == (0,)]
    assert majors, "old belt was never collected"
    assert len(minors) > len(majors), "Appel should mostly collect minors"
    vm.plan.verify()


def test_priority_belts_generational_order():
    vm, mu = make_vm("25.25.100")
    belts = vm.plan.policy.priority_belts(vm.plan)
    assert [b.index for b in belts] == [0, 1, 2]
