"""Integration tests: collection correctness across configurations.

These tests build real object graphs through the mutator API, force
collections, and check both structural survival (the graph is intact,
scalars preserved) and reclamation (dead objects actually free frames).
"""

import pytest

from repro.errors import OutOfMemory
from repro.runtime import VM, MutatorContext


def make_vm(config, frames=64, **kwargs):
    vm = VM(heap_bytes=frames * 256, collector=config, debug_verify=True, **kwargs)
    vm.define_type("node", nrefs=2, nscalars=1)
    vm.define_ref_array("arr")
    return vm, MutatorContext(vm)


CONFIGS = ["BSS", "Appel", "100.100.100", "Fixed.25", "25.25", "25.25.100", "BOF.25", "BOFM.25"]


@pytest.mark.parametrize("config", CONFIGS)
def test_linked_list_survives_collections(config):
    vm, mu = make_vm(config, frames=192)
    node = vm.types.by_name("node")
    head = mu.handle()
    for i in range(400):
        n = mu.alloc(node)
        mu.write_int(n, 0, i)
        mu.write(n, 0, head)
        head.addr = n.addr
        n.drop()
        # churn garbage to force collections
        for _ in range(3):
            mu.alloc(node).drop()
    assert vm.plan.collections, f"{config}: no collections happened"
    # walk the list: values must descend 399..0
    expect = 399
    cursor = mu.copy_handle(head)
    while not cursor.is_null:
        assert mu.read_int(cursor, 0) == expect
        expect -= 1
        nxt = mu.read(cursor, 0)
        cursor.drop()
        cursor = nxt
    assert expect == -1
    vm.plan.verify()


@pytest.mark.parametrize("config", CONFIGS)
def test_dead_objects_reclaimed(config):
    """Allocating far more than the heap must succeed when everything dies."""
    vm, mu = make_vm(config, frames=32)
    node = vm.types.by_name("node")
    total_words = 0
    for _ in range(4000):
        mu.alloc(node).drop()
        total_words += node.size_words()
    heap_words = vm.space.heap_frames * vm.space.frame_words
    assert total_words > 5 * heap_words


@pytest.mark.parametrize("config", CONFIGS)
def test_ref_arrays_survive(config):
    vm, mu = make_vm(config)
    node = vm.types.by_name("node")
    arr_t = vm.types.by_name("arr")
    arr = mu.alloc(arr_t, length=20)
    for i in range(20):
        n = mu.alloc(node)
        mu.write_int(n, 0, i * i)
        mu.write(arr, i, n)
        n.drop()
    for _ in range(1500):
        mu.alloc(node).drop()
    for i in range(20):
        n = mu.read(arr, i)
        assert mu.read_int(n, 0) == i * i
        n.drop()
    vm.plan.verify()


def test_shared_object_forwarded_once():
    """Two paths to one object must converge on a single copy."""
    vm, mu = make_vm("25.25.100")
    node = vm.types.by_name("node")
    shared = mu.alloc(node)
    mu.write_int(shared, 0, 777)
    a = mu.alloc(node)
    b = mu.alloc(node)
    mu.write(a, 0, shared)
    mu.write(b, 0, shared)
    shared.drop()
    vm.collect("forced")
    via_a = mu.read(a, 0)
    via_b = mu.read(b, 0)
    assert via_a.addr == via_b.addr
    assert mu.read_int(via_a, 0) == 777


def test_cyclic_structure_survives_when_reachable():
    vm, mu = make_vm("Appel")
    node = vm.types.by_name("node")
    a = mu.alloc(node)
    b = mu.alloc(node)
    mu.write(a, 0, b)
    mu.write(b, 0, a)
    mu.write_int(a, 0, 1)
    mu.write_int(b, 0, 2)
    for _ in range(1000):
        mu.alloc(node).drop()
    b2 = mu.read(a, 0)
    a2 = mu.read(b2, 0)
    assert a2.addr == a.addr
    assert mu.read_int(a2, 0) == 1
    assert mu.read_int(b2, 0) == 2


def test_cross_increment_cycle_reclaimed_by_complete_config():
    """X.X.100's raison d'être (§3.2): a dead cycle spanning increments is
    eventually reclaimed because the third belt collects en masse."""
    vm, mu = make_vm("25.25.100", frames=48)
    node = vm.types.by_name("node")
    a = mu.alloc(node)
    b = mu.alloc(node)
    mu.write(a, 0, b)
    mu.write(b, 0, a)
    # age the cycle into the upper belts
    for _ in range(1200):
        mu.alloc(node).drop()
    a.drop()
    b.drop()  # the cycle is now garbage
    before = vm.plan.allocations
    # keep allocating: must not run out even though the cycle spans belts
    for _ in range(6000):
        mu.alloc(node).drop()
    assert vm.plan.allocations - before == 6000
    vm.plan.verify()


def test_incomplete_config_retains_cross_increment_cycle():
    """Beltway X.X fails to reclaim cycles spanning increments — the javac
    anecdote of §4.2.4.  We detect retention directly: the cycle's words
    are still live-by-occupancy long after being dropped."""
    # no boot ballast: the verifier's reachable count should be dominated
    # by heap objects so the retention comparison below stays sharp
    vm, mu = make_vm("25.25", frames=64, boot_ballast_slots=0)
    node = vm.types.by_name("node")
    cycle = []
    # Build cycles and age them so their members land in *different*
    # belt-1 increments, then drop them.
    for _ in range(12):
        a = mu.alloc(node)
        for _ in range(200):
            mu.alloc(node).drop()  # age: spread across nursery collections
        b = mu.alloc(node)
        mu.write(a, 0, b)
        mu.write(b, 0, a)
        cycle.extend((a, b))
    for h in cycle:
        h.drop()
    for _ in range(4000):
        mu.alloc(node).drop()
    # The verifier sees the true live set (roots only) ...
    live = vm.plan.verify()
    # ... but belt occupancy retains the unreachable cycles.
    retained = vm.plan.live_words_upper_bound
    assert retained > live.words, (
        "expected X.X to retain cross-increment cyclic garbage "
        f"(occupancy {retained}w vs reachable {live.words}w)"
    )


def test_out_of_memory_when_live_exceeds_heap():
    vm, mu = make_vm("Appel", frames=16)
    node = vm.types.by_name("node")
    keep = []
    with pytest.raises(OutOfMemory):
        for _ in range(4000):
            keep.append(mu.alloc(node))


def test_forced_collect_on_empty_heap_raises():
    vm, mu = make_vm("Appel")
    with pytest.raises(OutOfMemory):
        vm.collect("forced")  # nothing collectible


def test_allocation_counts_and_words():
    vm, mu = make_vm("25.25.100")
    node = vm.types.by_name("node")
    for _ in range(10):
        mu.alloc(node).drop()
    assert vm.plan.allocations == 10
    assert vm.plan.allocated_words == 10 * node.size_words()
