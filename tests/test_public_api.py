"""Repository-level smoke tests: every module imports, every __all__
export exists, the version is set, and the README quickstart runs."""

import importlib
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
]


def test_every_module_imports():
    assert len(MODULES) > 30
    for name in MODULES:
        importlib.import_module(name)


@pytest.mark.parametrize(
    "package",
    ["repro", "repro.heap", "repro.core", "repro.analysis", "repro.sim",
     "repro.bench", "repro.runtime", "repro.gctk", "repro.obs",
     "repro.harness", "repro.sanitizer", "repro.workloads", "repro.grid",
     "repro.slo"],
)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{package}.{name} missing"


def test_version():
    assert repro.__version__ == "1.7.0"


def test_stable_run_surface():
    """The consolidated public API: five entry points, importable flat."""
    for name in ("run", "run_many", "sweep", "find_min_heap",
                 "attach_tracer", "RunOptions", "RunReport",
                 "TelemetryBus", "Tracer", "attach_sanitizer",
                 "arm_faults", "FaultSpec",
                 "load_spec", "fingerprint", "load_workload",
                 "ServerWorkloadSpec", "RequestTask", "ArrivalSpec",
                 "RequestStats",
                 "SLOBound", "sweep_frontier", "max_sustainable_rate",
                 "build_timeline", "TraceExportSink", "write_perfetto",
                 "compare_artefacts", "extract_metrics", "iter_jsonl"):
        assert name in repro.__all__
        assert callable(getattr(repro, name))


def test_readme_quickstart_runs():
    from repro import VM, MutatorContext

    vm = VM(heap_bytes=32 * 1024, collector="25.25.100")
    node = vm.define_type("node", nrefs=2, nscalars=1)
    mu = MutatorContext(vm)
    head = mu.alloc(node)
    child = mu.alloc(node)
    mu.write(head, 0, child)
    vm.collect()
    assert "belt" in vm.plan.describe_structure()
    stats = vm.finish()
    assert stats.collections >= 1
    assert "25.25.100" in stats.summary_row()


def test_exceptions_form_hierarchy():
    from repro import (
        BarrierError,
        ConfigError,
        HeapCorruption,
        InvalidAddress,
        OutOfMemory,
        ReproError,
    )

    for exc in (BarrierError, ConfigError, HeapCorruption, OutOfMemory):
        assert issubclass(exc, ReproError)
    assert issubclass(InvalidAddress, HeapCorruption)
