"""The batched minimum-heap search must equal the sequential algorithm.

``_Search`` is property-tested against a straightforward linear reference
on synthetic monotonic predicates (completes iff heap >= threshold) over
a dense lattice of thresholds and starting guesses — including the
walk-down regime the bisection replaced.  The real-workload equivalence
and the warm-store replay are then checked on actual runs.
"""

import pytest

from repro.grid import ResultStore, find_min_heaps
from repro.grid.minsearch import _Search
from repro.harness.runner import FRAME_BYTES, find_min_heap
from repro.errors import OutOfMemory
from repro.obs import RingBufferSink, TelemetryBus

MAX_BYTES = 64 * FRAME_BYTES


def _drive(search, threshold):
    """Run one search to completion against a monotonic predicate."""
    probes = 0
    while True:
        heap = search.probe()
        if heap is None:
            return probes
        probes += 1
        assert probes < 200, "search does not terminate"
        search.feed(heap >= threshold)


def _reference_min(start, threshold, max_bytes, frame):
    """The pre-batching sequential algorithm, linear walk-down included."""
    heap = start
    if heap >= threshold:  # walk down one frame at a time
        while heap - frame >= 2 * frame and heap - frame >= threshold:
            heap -= frame
        return heap
    while heap < threshold:  # double
        heap *= 2
        if heap > max_bytes:
            return None
    lo, hi = heap // 2, heap
    while hi - lo > frame:  # upward bisection
        mid = max(2 * frame, ((lo + hi) // 2 // frame) * frame)
        if mid in (lo, hi):
            break
        if mid >= threshold:
            hi = mid
        else:
            lo = mid
    return hi


@pytest.mark.parametrize("start_frames", [2, 3, 4, 8, 16])
def test_search_equals_linear_reference(start_frames):
    start = start_frames * FRAME_BYTES
    for threshold_frames in range(2, 40):
        threshold = threshold_frames * FRAME_BYTES
        search = _Search(start, MAX_BYTES, FRAME_BYTES)
        _drive(search, threshold)
        expected = _reference_min(start, threshold, MAX_BYTES, FRAME_BYTES)
        assert not search.failed
        assert search.result == expected, (
            f"start={start_frames}f threshold={threshold_frames}f"
        )


def test_search_walk_down_uses_logarithmically_few_probes():
    # Start far above the minimum: the old walk burned one run per frame
    # (here ~46); the bisection needs a handful.
    start, threshold = 48 * FRAME_BYTES, 2 * FRAME_BYTES
    search = _Search(start, MAX_BYTES, FRAME_BYTES)
    probes = _drive(search, threshold)
    assert search.result == _reference_min(start, threshold, MAX_BYTES, FRAME_BYTES)
    assert probes <= 10


def test_search_reports_failure_beyond_max_bytes():
    search = _Search(2 * FRAME_BYTES, MAX_BYTES, FRAME_BYTES)
    _drive(search, threshold=MAX_BYTES * 2)
    assert search.failed and search.result is None


def test_unsatisfiable_target_raises_out_of_memory():
    with pytest.raises(OutOfMemory, match="jess/gctk:Fixed.10"):
        find_min_heaps(
            [("jess", "gctk:Fixed.10")],
            scale=0.2,
            max_bytes=4 * FRAME_BYTES,
            parallel=False,
        )


# ----------------------------------------------------------------------
# Real workloads
# ----------------------------------------------------------------------
TARGETS = [("jess", "gctk:Appel"), ("db", "gctk:Appel"), ("jess", "25.25.100")]


@pytest.fixture(scope="module")
def individual():
    return {
        target: find_min_heap(target[0], target[1], scale=0.2)
        for target in TARGETS
    }


def test_batched_search_matches_individual_searches(individual):
    batched = find_min_heaps(TARGETS, scale=0.2, parallel=False)
    assert batched == individual


def test_warm_store_replays_search_without_running(tmp_path, individual):
    root = tmp_path / "s"
    with ResultStore(root) as store:
        cold = find_min_heaps(TARGETS, scale=0.2, store=store, parallel=False)
    assert cold == individual

    bus = TelemetryBus()
    sink = bus.subscribe(RingBufferSink())
    warm_store = ResultStore(root)
    warm = find_min_heaps(
        TARGETS, scale=0.2, store=warm_store, parallel=False, bus=bus
    )
    assert warm == individual
    statuses = {e.data["status"] for e in sink.events if e.kind == "grid.job"}
    assert statuses == {"cached"}  # not a single probe re-executed
    assert warm_store.puts == 0
