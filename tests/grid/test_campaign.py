"""Campaign-level wiring: sweep defaults, experiment routing, CLI flags.

Satellite coverage: ``sweep``/``sweep_grid`` share the auto-parallel
default (the old ``False``-vs-``True`` split is gone), the experiment
layer routes through a configured store, and the ``beltway-bench`` grid
flags (``--store``/``--no-store``/``--resume``) behave end to end.
"""

import inspect
import json

import pytest

from repro.analysis.sweep import heap_multipliers, sweep, sweep_grid
from repro.grid import ResultStore
from repro.harness import experiments as E
from repro.harness.cli import main

SCALE = 0.2


# ----------------------------------------------------------------------
# sweep defaults (satellite: the parallel=False/parallel=True split)
# ----------------------------------------------------------------------
def test_sweep_and_sweep_grid_share_the_auto_default():
    assert inspect.signature(sweep).parameters["parallel"].default is None
    assert inspect.signature(sweep_grid).parameters["parallel"].default is None


def test_default_sweep_matches_explicit_serial():
    kwargs = dict(
        min_heap_bytes=24 * 1024,
        multipliers=heap_multipliers(3),
        scale=SCALE,
        seed=13,
    )
    auto = sweep("jess", "25.25.100", **kwargs)
    serial = sweep("jess", "25.25.100", parallel=False, **kwargs)
    assert auto.runs == serial.runs
    assert auto.execution_mode in ("parallel", "serial")
    assert serial.execution_mode == "serial"


def test_sweep_checkpoints_into_store(tmp_path):
    store = ResultStore(tmp_path / "s")
    kwargs = dict(
        min_heap_bytes=24 * 1024,
        multipliers=heap_multipliers(3),
        scale=SCALE,
        seed=13,
        store=store,
    )
    cold = sweep("jess", "25.25.100", **kwargs)
    assert store.puts == 3
    warm = sweep("jess", "25.25.100", **kwargs)
    assert store.puts == 3  # nothing re-executed
    assert warm.runs == cold.runs


def test_sweep_grid_serves_cells_computed_by_sweep(tmp_path):
    """One shared store: grid cells and single-sweep cells are the same
    cells, so work done by either API is never repeated by the other."""
    store = ResultStore(tmp_path / "s")
    multipliers = heap_multipliers(3)
    sweep(
        "jess", "25.25.100", 24 * 1024, multipliers,
        scale=SCALE, seed=13, store=store,
    )
    executed_before = store.puts
    grid = sweep_grid(
        ["jess"], ["25.25.100"], {"jess": 24 * 1024}, multipliers,
        scale=SCALE, seed=13, store=store,
    )
    assert store.puts == executed_before  # grid replayed, not recomputed
    assert len(grid[("jess", "25.25.100")].runs) == 3


# ----------------------------------------------------------------------
# experiment-layer routing
# ----------------------------------------------------------------------
@pytest.fixture(autouse=True)
def _clean_experiment_state():
    E.clear_caches()
    E.configure_grid()
    yield
    E.clear_caches()
    E.configure_grid()


def test_experiments_route_through_configured_store(tmp_path):
    store = ResultStore(tmp_path / "s")
    E.configure_grid(store=store)
    assert E.grid_store() is store
    cold = E.figure4(scale=SCALE)
    assert store.puts > 0
    store.close()

    E.clear_caches()
    warm_store = ResultStore(tmp_path / "s")
    E.configure_grid(store=warm_store)
    warm = E.figure4(scale=SCALE)
    assert warm_store.puts == 0  # every cell replayed from disk
    assert warm.data == cold.data
    assert warm.checks == cold.checks


def test_min_heaps_batch_fills_the_cache():
    minima = E.min_heaps(["jess", "db"], SCALE)
    assert set(minima) == {"jess", "db"}
    assert E._min_heap_cache[("jess", SCALE)] == minima["jess"]
    # Subsequent singles are cache hits, not fresh searches.
    assert E.min_heap("db", SCALE) == minima["db"]


# ----------------------------------------------------------------------
# CLI flags
# ----------------------------------------------------------------------
def test_cli_minheap_store_cold_then_warm(tmp_path, capsys):
    root = tmp_path / "store"
    argv = ["minheap", "--benchmark", "jess", "--scale", str(SCALE),
            "--store", str(root)]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "min heap" in cold and "grid: 0 cached" in cold
    assert (root / "index.json").exists()

    assert main(argv + ["--resume"]) == 0
    warm = capsys.readouterr().out
    assert ", 0 executed" in warm  # resume re-ran nothing

    index = json.loads((root / "index.json").read_text())
    assert index["cells"]  # the campaign is on disk


def test_cli_no_store_skips_the_store(tmp_path, capsys):
    root = tmp_path / "store"
    assert main([
        "minheap", "--benchmark", "jess", "--scale", str(SCALE),
        "--store", str(root), "--no-store",
    ]) == 0
    out = capsys.readouterr().out
    assert "grid:" not in out
    assert not (root / "index.json").exists()


def test_cli_resume_requires_store(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["experiment", "figure4", "--resume"])
    assert excinfo.value.code == 2
    assert "--resume requires --store" in capsys.readouterr().err


def test_cli_experiment_with_store(tmp_path, capsys):
    root = tmp_path / "store"
    argv = ["experiment", "figure4", "--scale", str(SCALE),
            "--store", str(root)]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "grid:" in cold and "executed" in cold

    assert main(argv) == 0
    warm = capsys.readouterr().out
    assert ", 0 executed" in warm
