"""The grid executor: identity, resume, retry, crash recovery, events.

Everything here runs on a deliberately small jess grid (scale 0.2) so the
whole file stays fast; the properties under test — bit-identity with the
serial loop, executes-only-missing resume, fault tolerance — are size
independent.
"""

import os

import pytest

from repro.grid import GridFailure, ResultStore, cell_key, execute_jobs
from repro.harness.runner import RunOptions, effective_workers, run
from repro.obs import RingBufferSink, TelemetryBus
from repro.obs.events import validate_events

SCALE = 0.2
JOBS = [
    ("jess", "25.25.100", 24 * 1024, SCALE, 13),
    ("jess", "25.25.100", 32 * 1024, SCALE, 13),
    ("jess", "gctk:Appel", 24 * 1024, SCALE, 13),
]


@pytest.fixture(scope="module")
def fresh():
    """Ground truth: one plain run() per job, no executor involved."""
    return [
        run(b, c, h, options=RunOptions(scale=s, seed=seed)).stats
        for (b, c, h, s, seed) in JOBS
    ]


def test_serial_executor_matches_fresh_runs(fresh):
    report = execute_jobs(JOBS, parallel=False)
    assert report.results == fresh
    assert report.execution_mode == "serial"
    assert report.cached == 0 and not report.failures
    assert sorted(map(tuple, report.executed)) == sorted(JOBS)


def test_pool_executor_is_bit_identical(fresh):
    report = execute_jobs(JOBS, force_pool=True, max_workers=2)
    assert report.results == fresh
    assert report.execution_mode == "parallel"


def test_warm_store_serves_everything(tmp_path, fresh):
    store = ResultStore(tmp_path / "s")
    cold = execute_jobs(JOBS, store=store, parallel=False)
    assert cold.results == fresh
    warm = execute_jobs(JOBS, store=store, parallel=False)
    assert warm.results == fresh
    assert warm.cached == len(JOBS)
    assert warm.executed == [] and warm.execution_mode == "none"
    # The warm pass is pure lookups; it must be drastically faster.
    assert warm.wall_s < cold.wall_s / 5


def test_resume_executes_only_missing_cells(tmp_path, fresh):
    root = tmp_path / "s"
    with ResultStore(root) as store:
        execute_jobs(JOBS[:2], store=store, parallel=False)
    # A new process picking the campaign up: only the third cell runs.
    resumed = ResultStore(root)
    report = execute_jobs(JOBS, store=resumed, parallel=False)
    assert report.results == fresh
    assert report.cached == 2
    assert [tuple(j) for j in report.executed] == [JOBS[2]]


# ----------------------------------------------------------------------
# Fault tolerance (module-level runners: they must pickle for the pool)
# ----------------------------------------------------------------------
def _ok_runner(job):
    from repro.grid.executor import _default_runner

    return _default_runner(job)


def _poison_32k(job):
    if job[2] == 32 * 1024:
        raise RuntimeError("poison cell")
    return _ok_runner(job)


def _crash_once(job):
    """Hard-exit the worker on first sight of the sentinel'd cell."""
    sentinel = os.environ["GRID_TEST_SENTINEL"]
    if job[2] == 32 * 1024:
        try:
            with open(sentinel, "x"):
                pass
            os._exit(1)  # simulates a segfault: no exception, no cleanup
        except FileExistsError:
            pass  # second attempt: behave
    return _ok_runner(job)


def test_failed_cell_is_recorded_not_stored(tmp_path, fresh):
    store = ResultStore(tmp_path / "s")
    report = execute_jobs(
        JOBS, store=store, parallel=False, cell_runner=_poison_32k, retries=1
    )
    assert report.results[0] == fresh[0] and report.results[2] == fresh[2]
    bad = report.results[1]
    assert not bad.completed and bad.failure.startswith("grid: RuntimeError")
    assert report.retries == 1  # one re-attempt before giving up
    assert [f.attempts for f in report.failures] == [2]
    assert isinstance(report.failures[0], GridFailure)
    # Never trust (or persist) a failure: the store has only the good cells.
    key = cell_key(*JOBS[1])
    assert ResultStore(tmp_path / "s").get(key) is None
    assert ResultStore(tmp_path / "s").get(cell_key(*JOBS[0])) == fresh[0]


def test_worker_crash_recovers_remaining_cells(tmp_path, fresh):
    os.environ["GRID_TEST_SENTINEL"] = str(tmp_path / "sentinel")
    try:
        report = execute_jobs(
            JOBS,
            force_pool=True,
            max_workers=2,
            cell_runner=_crash_once,
            retries=2,
        )
    finally:
        del os.environ["GRID_TEST_SENTINEL"]
    # The crash broke the pool; the serial fallback finished every cell
    # (the sentinel file exists now, so the retry completes normally).
    assert report.results == fresh
    assert report.retries >= 1
    assert not report.failures


def test_oom_results_are_legitimate_and_cached(tmp_path):
    """A heap too small to complete is a *result* (figures need the gap),
    not a grid failure — it must be stored and replayed like any other."""
    job = ("jess", "gctk:Fixed.50", 4 * 1024, SCALE, 13)
    store = ResultStore(tmp_path / "s")
    cold = execute_jobs([job], store=store, parallel=False)
    assert not cold.results[0].completed
    assert not cold.failures  # engine OOM, not an executor fault
    warm = execute_jobs([job], store=store, parallel=False)
    assert warm.cached == 1 and warm.results == cold.results


def _record_heap(job):
    _ORDER.append(job[2])
    return _ok_runner(job)


_ORDER = []


def test_cost_model_orders_small_heaps_first():
    _ORDER.clear()
    jobs = [
        ("jess", "25.25.100", 48 * 1024, SCALE, 13),
        ("jess", "25.25.100", 16 * 1024, SCALE, 13),
        ("jess", "25.25.100", 32 * 1024, SCALE, 13),
    ]
    report = execute_jobs(jobs, parallel=False, cell_runner=_record_heap)
    assert _ORDER == [16 * 1024, 32 * 1024, 48 * 1024]  # longest first
    # ...but results come back in input order regardless.
    assert [r.heap_bytes for r in report.results] == [48 * 1024, 16 * 1024, 32 * 1024]


def test_non_string_collector_runs_uncached(tmp_path):
    from repro.core.config import BeltwayConfig

    store = ResultStore(tmp_path / "s")
    job = ("jess", BeltwayConfig.parse("25.25.100"), 24 * 1024, SCALE, 13)
    first = execute_jobs([job], store=store, parallel=False)
    second = execute_jobs([job], store=store, parallel=False)
    assert second.cached == 0 and len(second.executed) == 1
    assert first.results == second.results


@pytest.mark.skipif(
    effective_workers() < 2,
    reason="cold-campaign speedup needs at least two effective CPUs",
)
def test_cold_parallel_campaign_beats_serial():
    """The ISSUE's cold-campaign target: >=1.4x over serial on >=2 CPUs."""
    jobs = [
        ("jess", "25.25.100", heap * 1024, SCALE, 13)
        for heap in (16, 20, 24, 28, 32, 40, 48, 64)
    ]
    serial = execute_jobs(jobs, parallel=False)
    parallel = execute_jobs(jobs, parallel=True)
    assert parallel.results == serial.results
    assert parallel.wall_s < serial.wall_s / 1.4


def test_grid_job_events_are_emitted_and_schema_valid(tmp_path):
    bus = TelemetryBus()
    sink = bus.subscribe(RingBufferSink(capacity=65536))
    store = ResultStore(tmp_path / "s")
    execute_jobs(JOBS, store=store, parallel=False, bus=bus)
    execute_jobs(JOBS, store=store, parallel=False, bus=bus)
    events = [e for e in sink.events if e.kind == "grid.job"]
    assert validate_events(events) == len(events)
    statuses = [e.data["status"] for e in events]
    assert statuses.count("done") == len(JOBS)
    assert statuses.count("cached") == len(JOBS)
    keys = {e.data["key"] for e in events}
    assert keys == {cell_key(*job) for job in JOBS}
    # Every grid.job carries its cell's batch ordinal plus the campaign's
    # running totals; the final event accounts for the whole batch.
    for event in events:
        assert event.data["job"] in range(len(JOBS))
    done = [e for e in events if e.data["status"] == "done"]
    assert all(e.data["worker"] > 0 for e in done)
    last = events[-1].data
    assert last["cached"] + last["executed"] + last["failed"] == len(JOBS)
    # The warm pass replays cached cells as run.replay synthesis events.
    replays = [e for e in sink.events if e.kind == "run.replay"]
    assert len(replays) == len(JOBS)
    assert {e.data["key"] for e in replays} == keys
