"""MonotoneSearch: property-pinned against an exhaustive linear walk.

For any threshold predicate on a step lattice, the doubling/bisection
search must land on exactly the value a linear walk finds, while issuing
strictly fewer probes on all but trivially small ranges.
"""

import itertools

import pytest

from repro.grid.minsearch import _Search
from repro.grid.monotone import MonotoneSearch, round_to_step


def drive(search, predicate):
    """Run a search to completion; returns (result_or_None, probes)."""
    probes = []
    while True:
        value = search.probe()
        if value is None:
            break
        probes.append(value)
        search.feed(predicate(value))
    return (None if search.failed else search.result), probes


def linear_minimum(predicate, floor, max_value, step):
    """Exhaustive reference: the smallest satisfying lattice value."""
    probes = 0
    for value in range(floor, max_value + 1, step):
        probes += 1
        if predicate(value):
            return value, probes
    return None, probes


STEPS = (1, 3, 64)
FLOORS_IN_STEPS = (1, 2, 5)
THRESHOLDS_IN_STEPS = (1, 2, 3, 7, 15, 31, 63)
STARTS_IN_STEPS = (1, 2, 4, 9, 40)


@pytest.mark.parametrize("step,floor_k,threshold_k,start_k", [
    (step, floor_k, threshold_k, start_k)
    for step, floor_k, threshold_k, start_k in itertools.product(
        STEPS, FLOORS_IN_STEPS, THRESHOLDS_IN_STEPS, STARTS_IN_STEPS)
])
def test_matches_linear_reference(step, floor_k, threshold_k, start_k):
    floor = floor_k * step
    threshold = threshold_k * step
    # Callers always place the start on the lattice at or above the
    # floor (round_to_step) — that is the search's input contract.
    start = round_to_step(start_k * step, step, floor)
    max_value = 64 * step
    predicate = lambda value: value >= threshold

    expected, _ = linear_minimum(predicate, floor, max_value, step)
    search = MonotoneSearch(start, max_value, step, floor=floor)
    result, probes = drive(search, predicate)

    # The doubling ladder from the start guess is the search's reach:
    # overshooting max_value without a success is a declared failure
    # (the historical minsearch semantics — callers pick a max_value
    # that is a generous power-of-two multiple of the start).
    ladder, value = [], start
    while value <= max_value:
        ladder.append(value)
        value *= 2
    if any(predicate(value) for value in ladder):
        # The true minimum, clamped to the floor — values below it are
        # not probed; the virtual failure seeds the down-phase.
        assert result == expected == max(floor, threshold)
    else:
        assert result is None and search.failed
    assert all(value % step == 0 for value in probes)
    assert all(floor <= value <= max_value for value in probes)
    assert len(probes) == len(set(probes)), "a value was probed twice"


def test_fails_when_nothing_satisfies():
    search = MonotoneSearch(100, 1600, 100, floor=100)
    result, probes = drive(search, lambda value: False)
    assert result is None and search.failed
    assert probes == [100, 200, 400, 800, 1600]
    assert search.hi == 1600  # highest probed value, for reporting


def test_probe_budget_is_logarithmic():
    step, floor, max_value = 1, 2, 4096
    for threshold in (2, 17, 1000, 4095):
        predicate = lambda value: value >= threshold
        _, linear_probes = linear_minimum(predicate, floor, max_value, step)
        _, probes = drive(
            MonotoneSearch(floor, max_value, step, floor=floor), predicate)
        assert len(probes) <= 2 * max_value.bit_length()
        # On ranges a linear walk would grind through, bisection wins by
        # at least 2x (thresholds right next to the start are a wash).
        if linear_probes > 64:
            assert len(probes) <= linear_probes / 2


def test_round_to_step():
    assert round_to_step(1234, 100, 100) == 1200
    assert round_to_step(1200, 100, 100) == 1200
    assert round_to_step(50, 100, 100) == 100
    assert round_to_step(0, 100, 200) == 200
    assert round_to_step(1000.7, 256, 512) == 768


def test_minsearch_is_the_same_machine():
    """grid.minsearch's _Search is MonotoneSearch in frame units with a
    two-frame floor — the generalisation must not have moved it."""
    search = _Search(lo=1024, max_bytes=1 << 20, frame_bytes=256)
    assert isinstance(search, MonotoneSearch)
    assert search.step == 256
    assert search.floor == 512
    assert search.frame == 256 and search.max_bytes == 1 << 20
    threshold = 13 * 256
    result, _ = drive(search, lambda value: value >= threshold)
    assert result == threshold
