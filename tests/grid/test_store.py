"""The content-addressed result store: keys, round trips, corruption.

The store's contract (DESIGN.md §14): a cell's key is a deterministic
fingerprint of everything that determines its result — benchmark,
collector, heap size, scale, seed, substrate tier and the store format
version — and a corrupt or truncated entry is *identical* to a missing
one: detected, recomputed, never trusted.
"""

import json
from pathlib import Path

import pytest

from repro.grid import ResultStore, cell_key, execute_jobs
from repro.grid.store import STORE_FORMAT_VERSION, stats_from_dict, stats_to_dict
from repro.harness.runner import run

GOLDEN_PATH = (
    Path(__file__).resolve().parent.parent / "data" / "golden_counters.json"
)
GOLDEN = json.loads(GOLDEN_PATH.read_text())


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------
def test_key_is_deterministic():
    a = cell_key("jess", "25.25.100", 24576, 0.2, 13)
    b = cell_key("jess", "25.25.100", 24576, 0.2, 13)
    assert a == b
    assert len(a) == 32 and all(c in "0123456789abcdef" for c in a)


@pytest.mark.parametrize(
    "other",
    [
        ("javac", "25.25.100", 24576, 0.2, 13),
        ("jess", "gctk:Appel", 24576, 0.2, 13),
        ("jess", "25.25.100", 24832, 0.2, 13),
        ("jess", "25.25.100", 24576, 0.4, 13),
        ("jess", "25.25.100", 24576, 0.2, 14),
    ],
)
def test_key_separates_every_identity_field(other):
    assert cell_key("jess", "25.25.100", 24576, 0.2, 13) != cell_key(*other)


def test_tier_change_invalidates_keys():
    base = cell_key("jess", "25.25.100", 24576, 0.2, 13, tier="python")
    assert base != cell_key("jess", "25.25.100", 24576, 0.2, 13, tier="cffi")
    assert base != cell_key("jess", "25.25.100", 24576, 0.2, 13, tier="numpy")


def test_scale_key_distinguishes_float_identity():
    # repr-based float identity: 0.1 + 0.2 is not 0.3 and must not alias.
    assert cell_key("jess", "25.25.100", 24576, 0.1 + 0.2, 13) != cell_key(
        "jess", "25.25.100", 24576, 0.3, 13
    )


# ----------------------------------------------------------------------
# Round trips
# ----------------------------------------------------------------------
def _fresh_stats(benchmark, collector, heap_bytes, scale, seed=13):
    from repro.harness.runner import RunOptions

    return run(
        benchmark, collector, heap_bytes, options=RunOptions(scale=scale, seed=seed)
    ).stats


def test_round_trip_is_bit_identical(tmp_path):
    stats = _fresh_stats("jess", "25.25.100", 24 * 1024, 0.2)
    key = cell_key("jess", "25.25.100", 24 * 1024, 0.2, 13)
    with ResultStore(tmp_path / "store") as store:
        store.put(key, stats)
    reloaded = ResultStore(tmp_path / "store")
    assert reloaded.get(key) == stats  # dataclass ==: every field, pauses too


def test_serialisation_round_trips_pause_records():
    stats = _fresh_stats("jess", "25.25.100", 24 * 1024, 0.2)
    assert stats.pauses, "fixture run must collect at least once"
    assert stats_from_dict(json.loads(json.dumps(stats_to_dict(stats)))) == stats


@pytest.mark.parametrize(
    "cell",
    sorted(GOLDEN["cells"]),
    ids=[cell.replace("/", "-") for cell in sorted(GOLDEN["cells"])],
)
def test_store_round_trip_matches_golden_counters(tmp_path, cell):
    """Executor → shard → fresh store: counters equal the checked-in goldens.

    Covers every (benchmark, collector) golden cell, so the store path is
    proven bit-faithful on all six benchmarks and all four collectors."""
    name, collector = cell.split("/")
    golden = GOLDEN["cells"][cell]
    scale, seed = GOLDEN["scale"], GOLDEN["seed"]
    heap = golden["heap_bytes"]
    key = cell_key(name, collector, heap, scale, seed)
    with ResultStore(tmp_path / "s") as store:
        report = execute_jobs(
            [(name, collector, heap, scale, seed)], store=store, parallel=False
        )
    stats = ResultStore(tmp_path / "s").get(key)
    assert stats == report.results[0]
    for field in (
        "completed",
        "allocations",
        "allocated_bytes",
        "copied_bytes",
        "collections",
        "full_heap_collections",
        "peak_remset_entries",
        "total_cycles",
        "gc_cycles",
        "mutator_cycles",
    ):
        assert getattr(stats, field) == golden[field], field


# ----------------------------------------------------------------------
# Corruption: a bad entry is a missing entry
# ----------------------------------------------------------------------
def _one_stored_cell(root, close=True):
    """Write one cell; ``close=False`` models a writer killed mid-campaign
    (shard appended and flushed, but no index snapshot ever built)."""
    stats = _fresh_stats("jess", "25.25.100", 24 * 1024, 0.2)
    key = cell_key("jess", "25.25.100", 24 * 1024, 0.2, 13)
    store = ResultStore(root)
    store.put(key, stats)
    if close:
        store.close()
    return key, stats


def _shards(root):
    return sorted(Path(root).glob("cells-*.jsonl"))


def test_truncated_shard_entry_is_recomputed(tmp_path):
    root = tmp_path / "store"
    key, stats = _one_stored_cell(root, close=False)
    shard = _shards(root)[0]
    shard.write_bytes(shard.read_bytes()[:-20])  # tear the tail mid-record
    store = ResultStore(root)
    assert store.get(key) is None
    report = execute_jobs(
        [("jess", "25.25.100", 24 * 1024, 0.2, 13)], store=store, parallel=False
    )
    assert report.cached == 0 and len(report.executed) == 1
    assert report.results[0] == stats


def test_flipped_payload_fails_digest_and_is_ignored(tmp_path):
    root = tmp_path / "store"
    key, stats = _one_stored_cell(root, close=False)
    shard = _shards(root)[0]
    line = shard.read_text()
    assert '"collections": ' in line
    shard.write_text(line.replace('"collections": ', '"collections": 9'))
    store = ResultStore(root)
    assert store.get(key) is None
    assert store.corrupt_entries >= 1


def test_corrupted_index_entry_fails_digest_and_is_ignored(tmp_path):
    root = tmp_path / "store"
    key, stats = _one_stored_cell(root)  # closed: the cell lives in the index
    for shard in _shards(root):
        shard.unlink()  # the index is now the only copy
    index = root / "index.json"
    text = index.read_text()
    assert '"collections": ' in text
    index.write_text(text.replace('"collections": ', '"collections": 9'))
    store = ResultStore(root)
    assert store.get(key) is None
    assert store.corrupt_entries >= 1


def test_corrupt_index_is_rebuilt_from_shards(tmp_path):
    root = tmp_path / "store"
    key, stats = _one_stored_cell(root)
    (root / "index.json").write_text("{ not json")
    store = ResultStore(root)
    assert store.get(key) == stats  # shards are the source of truth


def test_stale_index_is_superseded_by_newer_shards(tmp_path):
    root = tmp_path / "store"
    key1, stats1 = _one_stored_cell(root)
    stats2 = _fresh_stats("jess", "gctk:Appel", 24 * 1024, 0.2)
    key2 = cell_key("jess", "gctk:Appel", 24 * 1024, 0.2, 13)
    with ResultStore(root) as late:  # appends a shard after the index above
        late.put(key2, stats2)
    store = ResultStore(root)
    assert store.get(key1) == stats1
    assert store.get(key2) == stats2


# ----------------------------------------------------------------------
# Concurrent writers
# ----------------------------------------------------------------------
def test_concurrent_writers_lose_nothing(tmp_path):
    root = tmp_path / "store"
    stats = _fresh_stats("jess", "25.25.100", 24 * 1024, 0.2)
    writers = [ResultStore(root) for _ in range(3)]
    keys = []
    for i, writer in enumerate(writers):
        # Distinct (synthetic) keys so all three cells must coexist.
        key = cell_key("jess", "25.25.100", 24 * 1024, 0.2, 100 + i)
        writer.put(key, stats)
        keys.append(key)
    # Interleaved index rebuilds must not drop other writers' shards.
    for writer in writers:
        writer.close()
    merged = ResultStore(root)
    for key in keys:
        assert merged.get(key) == stats
    index = json.loads((root / "index.json").read_text())
    assert index["format"] == STORE_FORMAT_VERSION
    assert len(index["cells"]) == 3


# ----------------------------------------------------------------------
# File-based server-workload cells (ISSUE 8)
# ----------------------------------------------------------------------
def _mini_spec_file(path, rate=700):
    path.write_text(json.dumps({
        "name": "mini",
        "duration_s": 0.05,
        "arrival": {"rate_rps": rate},
        "tasks": [{"name": "get",
                   "sites": [{"type": "small", "lifetime": "request"}]}],
    }))
    return path


def test_file_workload_key_is_content_addressed(tmp_path):
    """Editing a workload file invalidates its cells; renaming does not;
    a spec object with the file's content shares the file's cells."""
    from repro.specs import load as load_spec

    original = _mini_spec_file(tmp_path / "a.json")
    (tmp_path / "b").mkdir()
    renamed = _mini_spec_file(tmp_path / "b" / "renamed.json")
    edited = _mini_spec_file(tmp_path / "edited.json", rate=900)
    args = ("25.25.100", 96 * 1024, 1.0, 13)
    base = cell_key(original, *args)
    assert cell_key(renamed, *args) == base
    assert cell_key(load_spec(original), *args) == base
    assert cell_key(edited, *args) != base


def test_handbuilt_workloadspec_has_no_key(tmp_path):
    from repro.bench.spec import benchmark_spec
    from repro.errors import ConfigError

    with pytest.raises(ConfigError, match="fingerprint"):
        cell_key(benchmark_spec("db"), "25.25.100", 96 * 1024, 1.0, 13)


def test_server_cell_round_trips_request_stats(tmp_path):
    """put → shard → fresh store: the rebuilt RunStats carries an equal
    RequestStats, not a bare dict (the v2 format's new field)."""
    from repro.workloads.latency import RequestStats

    spec_file = _mini_spec_file(tmp_path / "mini.json")
    stats = _fresh_stats(spec_file, "25.25.100", 96 * 1024, 1.0)
    assert stats.requests is not None and stats.requests.count > 0
    key = cell_key(spec_file, "25.25.100", 96 * 1024, 1.0, 13)
    with ResultStore(tmp_path / "store") as store:
        store.put(key, stats)
    reloaded = ResultStore(tmp_path / "store").get(key)
    assert isinstance(reloaded.requests, RequestStats)
    assert reloaded == stats


def test_executor_serves_server_cells_from_store(tmp_path):
    """run_many with a store: the second batch replays the server cell
    from disk, bit-identically, executing nothing."""
    from repro.harness.runner import run_many

    spec_file = _mini_spec_file(tmp_path / "mini.json")
    job = [(spec_file, "25.25.100", 96 * 1024, 1.0, 13)]
    with ResultStore(tmp_path / "store") as store:
        first = run_many(job, parallel=False, store=store)[0]
        assert store.puts == 1
    with ResultStore(tmp_path / "store") as store:
        second = run_many(job, parallel=False, store=store)[0]
        assert store.hits == 1 and store.puts == 0
    assert first == second
    assert second.requests == first.requests
